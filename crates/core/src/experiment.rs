//! Single-iteration execution.
//!
//! One *iteration* follows the Meterstick procedure (Figure 5): deploy,
//! start the server, start metric logging, connect the player emulation,
//! run for the configured duration, then collect metrics. The free function
//! [`execute_iteration`] is the single implementation of that procedure;
//! [`IterationJob::run`](crate::campaign::IterationJob::run) calls it for
//! every job of a campaign plan.
//!
//! All sweep composition lives in [`Campaign`](crate::campaign::Campaign):
//! a campaign covers multiple workloads, environments and tick-thread
//! settings, returns `Result` instead of panicking on bad deployment
//! configuration, and can execute on any
//! [`Executor`](crate::executor::Executor). (The deprecated
//! `ExperimentRunner` shim that used to live here has been removed; build a
//! single-cell campaign with [`Campaign::from_config`] instead.)
//!
//! [`Campaign::from_config`]: crate::campaign::Campaign::from_config

use std::collections::VecDeque;

use cloud_sim::metrics_collector::{SystemMetricsCollector, TickObservation};
use meterstick_metrics::response::ResponseTimeSummary;
use meterstick_metrics::trace::{TickRecord, TickTrace};
use meterstick_metrics::windowed::WindowedAggregator;
use meterstick_workloads::BuiltWorkload;
use mlg_bots::PlayerEmulation;
use mlg_server::{GameServer, ServerConfig, ServerFlavor, TickStageBreakdown};

use crate::config::BenchmarkConfig;
use crate::results::IterationResult;
use crate::sink::TickSample;

/// Per-tick hook threaded through an iteration's tick loop by
/// [`execute_iteration_observed`].
///
/// The batch path uses [`NoopTickObserver`] (the loop inlines to exactly
/// the unobserved code). The benchmark daemon's observer is where
/// pause/resume blocking and live sink fan-out live — keeping that code in
/// the daemon crate means this crate stays inside the tick determinism
/// contract (no wall-clock reads here).
pub trait TickObserver {
    /// Called after every executed tick.
    fn on_tick(&mut self, sample: &TickSample) {
        let _ = sample;
    }

    /// Polled before each tick; returning `true` ends the iteration early
    /// (the result reports the ticks executed so far, uncrashed). A paused
    /// daemon *blocks* inside this poll instead of returning.
    fn should_abort(&mut self) -> bool {
        false
    }
}

/// The do-nothing observer behind [`execute_iteration`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTickObserver;

impl TickObserver for NoopTickObserver {}

/// Runs a single iteration of a single flavor under `config`, with the
/// environment and bot randomness derived from `seed`.
///
/// The workload world is built once per iteration from `config.base_seed`
/// (identical across iterations by design — only the environment and bot
/// behaviour vary) and handed to the server directly.
#[must_use]
pub fn execute_iteration(
    config: &BenchmarkConfig,
    flavor: ServerFlavor,
    iteration: u32,
    seed: u64,
) -> IterationResult {
    execute_iteration_observed(config, flavor, iteration, seed, &mut NoopTickObserver)
}

/// [`execute_iteration`] with a per-tick [`TickObserver`] threaded through
/// the loop. The observer cannot change what is simulated — it sees each
/// tick after the fact and may only stop the run — so an observed iteration
/// replays bit-identically to an unobserved one up to the abort point.
#[must_use]
pub fn execute_iteration_observed(
    config: &BenchmarkConfig,
    flavor: ServerFlavor,
    iteration: u32,
    seed: u64,
    observer: &mut dyn TickObserver,
) -> IterationResult {
    let built = config.workload.build(config.base_seed);
    let workload_kind = built.kind;
    let (mut server, mut emulation) = prepare(config, flavor, built, seed);
    let mut engine = config
        .environment
        .instantiate_at(seed, config.start_time)
        .engine;

    let ticks_planned = config.ticks_per_iteration();
    let duration_ms = config.duration_secs as f64 * 1_000.0;
    let budget_ms = server.config().tick_budget_ms;
    let mut trace = TickTrace::new(budget_ms);
    let mut collector = SystemMetricsCollector::new(30);
    let mut crashed = None;
    let mut ticks_executed = 0;
    let mut stage_busy = TickStageBreakdown::default();
    // Long-horizon mode: fold ticks through the bounded streaming
    // aggregator instead of growing the trace with the horizon. The
    // retained trace is a ring holding only the final window of records.
    let mut aggregator = config.metrics_window.map(|w| {
        WindowedAggregator::new(
            w.window_ticks.max(1) as usize,
            w.max_windows.max(1) as usize,
            budget_ms,
        )
    });
    let trace_cap = config
        .metrics_window
        .map(|w| w.window_ticks.max(1) as usize)
        .unwrap_or(0);
    let mut trace_tail: VecDeque<TickRecord> = VecDeque::with_capacity(trace_cap);

    // The iteration runs for a fixed span of *virtual time*, exactly like
    // the paper's fixed wall-clock duration: when the server is
    // overloaded, fewer ticks fit into the iteration (Na ≤ Ne in the ISR
    // definition).
    while server.clock_ms() < duration_ms {
        if observer.should_abort() {
            break;
        }
        let summary = emulation.step(&mut server, &mut engine);
        ticks_executed += 1;
        stage_busy.accumulate(&summary.stages);
        observer.on_tick(&TickSample {
            tick: summary.record.index,
            end_ms: summary.end_ms,
            busy_ms: summary.record.busy_ms,
            period_ms: summary.record.period_ms,
            budget_ms,
            stages: summary.stages,
            entity_count: summary.entity_count,
            player_count: summary.player_count,
        });
        if let Some(agg) = aggregator.as_mut() {
            agg.push(summary.record.busy_ms);
            if trace_tail.len() == trace_cap {
                trace_tail.pop_front();
            }
            trace_tail.push_back(summary.record);
        } else {
            trace.push(summary.record);
        }
        collector.observe_tick(
            summary.end_ms,
            TickObservation {
                cpu_utilization: summary.cpu_utilization,
                entities: summary.entity_count as u64,
                loaded_chunks: server.world().loaded_chunk_count() as u64,
                players: summary.player_count as u32,
                network_sent_bytes: summary.packets_emitted * 40,
                network_received_bytes: summary.bytes_received,
                blocks_written: summary.packets_emitted / 4,
            },
        );
        if let Some(crash) = summary.crash {
            crashed = Some(crash.reason);
            break;
        }
    }

    let response_samples = emulation.response_samples().to_vec();
    let (instability_ratio, windowed) = match aggregator {
        Some(agg) => {
            for record in trace_tail {
                trace.push(record);
            }
            let report = agg.finish(Some(ticks_planned));
            (report.instability_ratio, Some(report))
        }
        None => (trace.instability_ratio(Some(ticks_planned)), None),
    };
    IterationResult {
        flavor,
        workload: workload_kind,
        iteration,
        environment: config.environment.label(),
        instability_ratio,
        response: ResponseTimeSummary::of(&response_samples),
        response_samples,
        system_samples: collector.finish(),
        traffic: server.traffic_summary().clone(),
        ticks_executed,
        ticks_planned,
        crashed,
        trace,
        stage_busy,
        windowed,
    }
}

/// Builds the server and player emulation for one iteration, consuming the
/// already-built workload (one build per iteration; worlds are not `Clone`
/// on purpose, and rebuilding from the same seed would only duplicate
/// work).
fn prepare(
    config: &BenchmarkConfig,
    flavor: ServerFlavor,
    built: BuiltWorkload,
    seed: u64,
) -> (GameServer, PlayerEmulation) {
    let server_config = ServerConfig::for_flavor(flavor)
        .with_seed(config.base_seed)
        .with_tick_threads(config.tick_threads)
        .with_shard_rebalance(config.shard_rebalance)
        .with_eager_lighting(config.eager_lighting)
        .with_start_time_minute(config.start_time.minute_of_week());
    let bots = config.bots_override.unwrap_or(built.players.bots);
    let mut emulation = PlayerEmulation::new(
        bots,
        built.spawn_point,
        built.players.walk_area,
        built.players.moving,
        config.link,
        seed,
    );
    if built.players.building {
        emulation = emulation.with_builders();
    }
    if built.players.scatter > 0 {
        emulation = emulation.scattered(built.spawn_point, built.players.scatter, seed);
    }
    let mut server = GameServer::new(server_config, built.world, built.spawn_point);
    emulation.connect_all(&mut server);
    for (kind, pos) in &built.ambient_entities {
        server.spawn_entity(*kind, *pos);
    }
    if let Some(delay) = built.tnt_fuse_delay_ticks {
        server.schedule_tnt_ignition(delay);
    }
    (server, emulation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use cloud_sim::environment::Environment;
    use meterstick_workloads::WorkloadKind;

    fn quick_config(workload: WorkloadKind) -> BenchmarkConfig {
        BenchmarkConfig::new(workload)
            .with_flavors(vec![ServerFlavor::Vanilla])
            .with_environment(Environment::das5(2))
            .with_duration_secs(3)
            .with_iterations(1)
    }

    #[test]
    fn control_workload_runs_to_completion() {
        let results = Campaign::from_config(quick_config(WorkloadKind::Control))
            .run()
            .unwrap();
        assert_eq!(results.iterations().len(), 1);
        let it = &results.iterations()[0];
        // The iteration spans 3 virtual seconds; at 20 Hz that is at most 60
        // ticks, slightly fewer when individual ticks run over budget.
        assert!(
            it.ticks_executed >= 40 && it.ticks_executed <= 60,
            "{}",
            it.ticks_executed
        );
        assert!(!it.crashed());
        assert!(it.instability_ratio >= 0.0 && it.instability_ratio <= 1.0);
        assert!(!it.response_samples.is_empty());
        assert!(!it.system_samples.is_empty());
    }

    #[test]
    fn multiple_flavors_and_iterations_multiply_results() {
        let config = quick_config(WorkloadKind::Control)
            .with_flavors(vec![ServerFlavor::Vanilla, ServerFlavor::Paper])
            .with_iterations(2)
            .with_duration_secs(2);
        let results = Campaign::from_config(config).run().unwrap();
        assert_eq!(results.iterations().len(), 4);
        assert_eq!(results.for_flavor(ServerFlavor::Paper).len(), 2);
    }

    #[test]
    fn iterations_differ_on_clouds_but_worlds_are_identical() {
        let config = quick_config(WorkloadKind::Control)
            .with_environment(Environment::aws_default())
            .with_iterations(2);
        let results = Campaign::from_config(config).run().unwrap();
        let isr: Vec<f64> = results.isr_values(ServerFlavor::Vanilla);
        assert_eq!(isr.len(), 2);
        // Different interference seeds make the two iterations differ.
        let t0: f64 = results.iterations()[0].trace.busy_durations().iter().sum();
        let t1: f64 = results.iterations()[1].trace.busy_durations().iter().sum();
        assert_ne!(t0, t1);
    }

    #[test]
    fn players_workload_connects_25_bots() {
        let config = quick_config(WorkloadKind::Players).with_duration_secs(2);
        let results = Campaign::from_config(config).run().unwrap();
        let it = &results.iterations()[0];
        assert_eq!(it.workload, WorkloadKind::Players);
        // The busiest evidence that 25 bots are connected: entity/player
        // traffic exists and response samples were captured.
        assert!(it.traffic.total_messages() > 0);
    }

    #[test]
    fn same_seed_reproduces_identical_results_on_das5() {
        let config = quick_config(WorkloadKind::Control).with_duration_secs(2);
        let a = Campaign::from_config(config.clone()).run().unwrap();
        let b = Campaign::from_config(config).run().unwrap();
        let ta: Vec<f64> = a.iterations()[0].trace.busy_durations();
        let tb: Vec<f64> = b.iterations()[0].trace.busy_durations();
        assert_eq!(
            ta, tb,
            "identical configuration must reproduce identical traces"
        );
    }

    #[test]
    fn execute_iteration_is_callable_directly() {
        // The campaign layer derives seeds per job; direct calls remain
        // supported for custom harnesses.
        let config = quick_config(WorkloadKind::Control).with_duration_secs(2);
        let result = execute_iteration(&config, ServerFlavor::Vanilla, 0, 42);
        assert!(result.ticks_executed > 0);
        assert!(!result.crashed());
    }
}
