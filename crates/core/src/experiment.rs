//! The experiment runner: executing a benchmark configuration.
//!
//! One *experiment* runs every configured server flavor for the configured
//! number of iterations on one workload inside one deployment environment.
//! Each iteration follows the Meterstick procedure (Figure 5): deploy, start
//! the server, start metric logging, connect the player emulation, run for
//! the configured duration, then collect metrics.

use cloud_sim::metrics_collector::{SystemMetricsCollector, TickObservation};
use meterstick_metrics::response::ResponseTimeSummary;
use meterstick_metrics::trace::TickTrace;
use mlg_bots::PlayerEmulation;
use mlg_server::{GameServer, ServerConfig, ServerFlavor};
use meterstick_workloads::BuiltWorkload;

use crate::config::BenchmarkConfig;
use crate::deployment::DeploymentPlan;
use crate::results::{ExperimentResults, IterationResult};

/// Runs benchmark configurations and produces [`ExperimentResults`].
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: BenchmarkConfig,
}

impl ExperimentRunner {
    /// Creates a runner for the given configuration.
    #[must_use]
    pub fn new(config: BenchmarkConfig) -> Self {
        ExperimentRunner { config }
    }

    /// The configuration this runner executes.
    #[must_use]
    pub fn config(&self) -> &BenchmarkConfig {
        &self.config
    }

    /// Runs every flavor × iteration combination and collects the results.
    ///
    /// # Panics
    ///
    /// Panics if the deployment configuration is invalid (fewer than two
    /// nodes or no SSH key); use [`DeploymentPlan::plan`] directly to handle
    /// that case gracefully.
    #[must_use]
    pub fn run(&self) -> ExperimentResults {
        let plan = DeploymentPlan::plan(&self.config).expect("valid deployment configuration");
        let _ = plan.server_node();
        let mut results = ExperimentResults::new();
        for (flavor_idx, &flavor) in self.config.flavors.iter().enumerate() {
            for iteration in 0..self.config.iterations {
                let seed = self.config.iteration_seed(flavor_idx, iteration);
                results.push(self.run_iteration(flavor, iteration, seed));
            }
        }
        results
    }

    /// Runs a single iteration of a single flavor, with the environment
    /// randomness derived from `seed`.
    #[must_use]
    pub fn run_iteration(&self, flavor: ServerFlavor, iteration: u32, seed: u64) -> IterationResult {
        // The workload world is identical across iterations (same base seed);
        // only the environment and bot behaviour randomness changes.
        let built = self.config.workload.build(self.config.base_seed);
        let (mut server, mut emulation) = self.prepare(flavor, &built, seed);
        let mut engine = self.config.environment.instantiate(seed).engine;

        let ticks_planned = self.config.ticks_per_iteration();
        let duration_ms = self.config.duration_secs as f64 * 1_000.0;
        let mut trace = TickTrace::new(server.config().tick_budget_ms);
        let mut collector = SystemMetricsCollector::new(30);
        let mut crashed = None;
        let mut ticks_executed = 0;

        // The iteration runs for a fixed span of *virtual time*, exactly like
        // the paper's fixed wall-clock duration: when the server is
        // overloaded, fewer ticks fit into the iteration (Na ≤ Ne in the ISR
        // definition).
        while server.clock_ms() < duration_ms {
            let summary = emulation.step(&mut server, &mut engine);
            ticks_executed += 1;
            trace.push(summary.record);
            collector.observe_tick(
                summary.end_ms,
                TickObservation {
                    cpu_utilization: summary.cpu_utilization,
                    entities: summary.entity_count as u64,
                    loaded_chunks: server.world().loaded_chunk_count() as u64,
                    players: summary.player_count as u32,
                    network_sent_bytes: summary.packets_emitted * 40,
                    network_received_bytes: summary.bytes_received,
                    blocks_written: summary.packets_emitted / 4,
                },
            );
            if let Some(crash) = summary.crash {
                crashed = Some(crash.reason);
                break;
            }
        }

        let response_samples = emulation.response_samples().to_vec();
        IterationResult {
            flavor,
            workload: built.kind,
            iteration,
            environment: self.config.environment.label(),
            instability_ratio: trace.instability_ratio(Some(ticks_planned)),
            response: ResponseTimeSummary::of(&response_samples),
            response_samples,
            system_samples: collector.finish(),
            traffic: server.traffic_summary().clone(),
            ticks_executed,
            ticks_planned,
            crashed,
            trace,
        }
    }

    fn prepare(
        &self,
        flavor: ServerFlavor,
        built: &BuiltWorkload,
        seed: u64,
    ) -> (GameServer, PlayerEmulation) {
        // Rebuild the world for this server instance (worlds are not Clone on
        // purpose: each server owns its own state).
        let fresh = self.config.workload.build(self.config.base_seed);
        let server_config = ServerConfig::for_flavor(flavor).with_seed(self.config.base_seed);
        let mut server = GameServer::new(server_config, fresh.world, fresh.spawn_point);

        let bots = self.config.bots_override.unwrap_or(built.players.bots);
        let mut emulation = PlayerEmulation::new(
            bots,
            built.spawn_point,
            built.players.walk_area,
            built.players.moving,
            self.config.link,
            seed,
        );
        emulation.connect_all(&mut server);
        for (kind, pos) in &fresh.ambient_entities {
            server.spawn_entity(*kind, *pos);
        }
        if let Some(delay) = built.tnt_fuse_delay_ticks {
            server.schedule_tnt_ignition(delay);
        }
        (server, emulation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::environment::Environment;
    use meterstick_workloads::WorkloadKind;

    fn quick_config(workload: WorkloadKind) -> BenchmarkConfig {
        BenchmarkConfig::new(workload)
            .with_flavors(vec![ServerFlavor::Vanilla])
            .with_environment(Environment::das5(2))
            .with_duration_secs(3)
            .with_iterations(1)
    }

    #[test]
    fn control_workload_runs_to_completion() {
        let results = ExperimentRunner::new(quick_config(WorkloadKind::Control)).run();
        assert_eq!(results.iterations().len(), 1);
        let it = &results.iterations()[0];
        // The iteration spans 3 virtual seconds; at 20 Hz that is at most 60
        // ticks, slightly fewer when individual ticks run over budget.
        assert!(it.ticks_executed >= 40 && it.ticks_executed <= 60, "{}", it.ticks_executed);
        assert!(!it.crashed());
        assert!(it.instability_ratio >= 0.0 && it.instability_ratio <= 1.0);
        assert!(!it.response_samples.is_empty());
        assert!(!it.system_samples.is_empty());
    }

    #[test]
    fn multiple_flavors_and_iterations_multiply_results() {
        let config = quick_config(WorkloadKind::Control)
            .with_flavors(vec![ServerFlavor::Vanilla, ServerFlavor::Paper])
            .with_iterations(2)
            .with_duration_secs(2);
        let results = ExperimentRunner::new(config).run();
        assert_eq!(results.iterations().len(), 4);
        assert_eq!(results.for_flavor(ServerFlavor::Paper).len(), 2);
    }

    #[test]
    fn iterations_differ_on_clouds_but_worlds_are_identical() {
        let config = quick_config(WorkloadKind::Control)
            .with_environment(Environment::aws_default())
            .with_iterations(2);
        let results = ExperimentRunner::new(config).run();
        let isr: Vec<f64> = results.isr_values(ServerFlavor::Vanilla);
        assert_eq!(isr.len(), 2);
        // Different interference seeds make the two iterations differ.
        let t0: f64 = results.iterations()[0].trace.busy_durations().iter().sum();
        let t1: f64 = results.iterations()[1].trace.busy_durations().iter().sum();
        assert_ne!(t0, t1);
    }

    #[test]
    fn players_workload_connects_25_bots() {
        let config = quick_config(WorkloadKind::Players).with_duration_secs(2);
        let results = ExperimentRunner::new(config).run();
        let it = &results.iterations()[0];
        assert_eq!(it.workload, WorkloadKind::Players);
        // The busiest evidence that 25 bots are connected: entity/player
        // traffic exists and response samples were captured.
        assert!(it.traffic.total_messages() > 0);
    }

    #[test]
    fn same_seed_reproduces_identical_results_on_das5() {
        let config = quick_config(WorkloadKind::Control).with_duration_secs(2);
        let a = ExperimentRunner::new(config.clone()).run();
        let b = ExperimentRunner::new(config).run();
        let ta: Vec<f64> = a.iterations()[0].trace.busy_durations();
        let tb: Vec<f64> = b.iterations()[0].trace.busy_durations();
        assert_eq!(ta, tb, "identical configuration must reproduce identical traces");
    }
}
