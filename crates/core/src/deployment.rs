//! The deployment component (Figure 5, component 2).
//!
//! In the real benchmark this component copies software to SSH-accessible
//! machines and wires up the controller clients. The reproduction performs
//! the same *planning* — validating the node list, assigning roles, and
//! producing a deployment plan — but materializes the "machines" as
//! in-process simulation objects instead of remote hosts.

use serde::{Deserialize, Serialize};

use crate::config::BenchmarkConfig;
use crate::controller::WorkerRole;

/// Errors produced while validating a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeploymentError {
    /// At least two nodes are required: one server node and one or more
    /// player-emulation nodes.
    NotEnoughNodes {
        /// How many nodes the configuration listed.
        provided: usize,
    },
    /// A node address is empty or malformed.
    InvalidNodeAddress(String),
    /// No SSH key was provided.
    MissingSshKey,
}

impl std::fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeploymentError::NotEnoughNodes { provided } => write!(
                f,
                "deployment needs at least 2 nodes (server + player emulation), got {provided}"
            ),
            DeploymentError::InvalidNodeAddress(addr) => {
                write!(f, "invalid node address: {addr:?}")
            }
            DeploymentError::MissingSshKey => write!(f, "no ssh key configured"),
        }
    }
}

impl std::error::Error for DeploymentError {}

/// One node in the deployment plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedNode {
    /// The node's address as listed in the configuration.
    pub address: String,
    /// The role assigned to the node.
    pub role: WorkerRole,
}

/// A validated deployment plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// All nodes with their assigned roles; the first node hosts the server.
    pub nodes: Vec<PlannedNode>,
}

impl DeploymentPlan {
    /// Validates the node/key configuration and assigns roles: the first node
    /// runs the MLG, the remaining nodes run player emulation.
    ///
    /// # Errors
    ///
    /// Returns a [`DeploymentError`] when fewer than two nodes are listed, an
    /// address is empty, or no SSH key is configured.
    pub fn plan(config: &BenchmarkConfig) -> Result<DeploymentPlan, DeploymentError> {
        if config.node_ips.len() < 2 {
            return Err(DeploymentError::NotEnoughNodes {
                provided: config.node_ips.len(),
            });
        }
        if config.ssh_keys.is_empty() {
            return Err(DeploymentError::MissingSshKey);
        }
        for addr in &config.node_ips {
            if addr.trim().is_empty() {
                return Err(DeploymentError::InvalidNodeAddress(addr.clone()));
            }
        }
        let nodes = config
            .node_ips
            .iter()
            .enumerate()
            .map(|(i, address)| PlannedNode {
                address: address.clone(),
                role: if i == 0 {
                    WorkerRole::Server
                } else {
                    WorkerRole::PlayerEmulation
                },
            })
            .collect();
        Ok(DeploymentPlan { nodes })
    }

    /// The address of the server node.
    #[must_use]
    pub fn server_node(&self) -> &str {
        &self.nodes[0].address
    }

    /// Addresses of the player-emulation nodes.
    #[must_use]
    pub fn emulation_nodes(&self) -> Vec<&str> {
        self.nodes[1..].iter().map(|n| n.address.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meterstick_workloads::WorkloadKind;

    #[test]
    fn default_config_plans_successfully() {
        let config = BenchmarkConfig::new(WorkloadKind::Control);
        let plan = DeploymentPlan::plan(&config).unwrap();
        assert_eq!(plan.nodes.len(), 2);
        assert_eq!(plan.server_node(), "10.0.0.10");
        assert_eq!(plan.emulation_nodes(), vec!["10.0.0.11"]);
        assert_eq!(plan.nodes[0].role, WorkerRole::Server);
        assert_eq!(plan.nodes[1].role, WorkerRole::PlayerEmulation);
    }

    #[test]
    fn too_few_nodes_is_an_error() {
        let mut config = BenchmarkConfig::new(WorkloadKind::Control);
        config.node_ips = vec!["10.0.0.10".into()];
        assert_eq!(
            DeploymentPlan::plan(&config),
            Err(DeploymentError::NotEnoughNodes { provided: 1 })
        );
    }

    #[test]
    fn missing_key_and_bad_address_are_errors() {
        let mut config = BenchmarkConfig::new(WorkloadKind::Control);
        config.ssh_keys.clear();
        assert_eq!(
            DeploymentPlan::plan(&config),
            Err(DeploymentError::MissingSshKey)
        );

        let mut config = BenchmarkConfig::new(WorkloadKind::Control);
        config.node_ips = vec!["10.0.0.10".into(), "  ".into()];
        assert!(matches!(
            DeploymentPlan::plan(&config),
            Err(DeploymentError::InvalidNodeAddress(_))
        ));
    }

    #[test]
    fn errors_format_readably() {
        let err = DeploymentError::NotEnoughNodes { provided: 1 };
        assert!(err.to_string().contains("at least 2 nodes"));
    }
}
