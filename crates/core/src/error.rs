//! Non-panicking error type for benchmark orchestration.
//!
//! Everything reachable from [`crate::campaign::Campaign::run`] reports
//! invalid configuration and execution failures through [`BenchmarkError`]
//! instead of panicking; the legacy `expect`-on-[`DeploymentPlan`] path
//! died with the removed `ExperimentRunner` shim.
//!
//! [`DeploymentPlan`]: crate::deployment::DeploymentPlan

use crate::deployment::DeploymentError;

/// An error raised while planning or executing a benchmark campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchmarkError {
    /// The deployment configuration (nodes, SSH keys) is invalid.
    Deployment(DeploymentError),
    /// One of the sweep dimensions is empty, so the factorial plan would
    /// contain no jobs.
    EmptyDimension {
        /// Which dimension was empty: `"workloads"`, `"flavors"`,
        /// `"environments"` or `"iterations"`.
        dimension: &'static str,
    },
    /// A scalar configuration parameter is out of its valid range.
    InvalidParameter {
        /// The offending parameter, e.g. `"duration_secs"`.
        parameter: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A worker thread of a parallel executor panicked while running a job.
    WorkerPanicked {
        /// Human-readable label of the job that was running.
        job: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkError::Deployment(err) => write!(f, "deployment: {err}"),
            BenchmarkError::EmptyDimension { dimension } => {
                write!(f, "campaign sweep dimension {dimension:?} is empty")
            }
            BenchmarkError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid {parameter}: {reason}")
            }
            BenchmarkError::WorkerPanicked { job, message } => {
                write!(f, "worker panicked while running {job}: {message}")
            }
        }
    }
}

impl std::error::Error for BenchmarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchmarkError::Deployment(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DeploymentError> for BenchmarkError {
    fn from(err: DeploymentError) -> Self {
        BenchmarkError::Deployment(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let err = BenchmarkError::EmptyDimension {
            dimension: "workloads",
        };
        assert!(err.to_string().contains("workloads"));
        let err = BenchmarkError::from(DeploymentError::MissingSshKey);
        assert!(err.to_string().contains("ssh key"));
        let err = BenchmarkError::InvalidParameter {
            parameter: "duration_secs",
            reason: "must be at least 1".into(),
        };
        assert!(err.to_string().contains("duration_secs"));
    }

    #[test]
    fn deployment_errors_keep_their_source() {
        use std::error::Error;
        let err = BenchmarkError::from(DeploymentError::MissingSshKey);
        assert!(err.source().is_some());
    }
}
