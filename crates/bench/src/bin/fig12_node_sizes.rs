//! Figure 12 (MF5): tick time and ISR on the TNT workload for AWS node sizes.
//!
//! Runs the TNT workload on t3.large (L), t3.xlarge (XL) and t3.2xlarge
//! (2XL) nodes for every flavor, showing that the hosting providers'
//! recommended 2-vCPU size is insufficient. The node-size axis is expressed
//! with `Campaign::aws_node_sizes`, so the whole figure is one campaign.

use cloud_sim::environment::Environment;
use cloud_sim::node::NodeType;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{duration_from_args, print_header, run_campaign};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Figure 12 (MF5)",
        "TNT workload on AWS node sizes L / XL / 2XL",
    );
    // The node-size effect only shows once the post-detonation chain reaction
    // has run for a while, so this figure always uses the paper's 60 s.
    let duration = duration_from_args().max(60);
    let nodes = [
        ("L (t3.large)", NodeType::aws_t3_large()),
        ("XL (t3.xlarge)", NodeType::aws_t3_xlarge()),
        ("2XL (t3.2xlarge)", NodeType::aws_t3_2xlarge()),
    ];
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Tnt])
        .flavors(ServerFlavor::all())
        .environments([])
        .aws_node_sizes(nodes.iter().map(|(_, node)| node.clone()))
        .duration_secs(duration)
        .iterations(1);
    let results = run_campaign(&campaign);

    let mut rows = Vec::new();
    for (label, node) in nodes {
        let env_label = Environment::aws(node).label();
        for flavor in ServerFlavor::all() {
            let cell = results.for_cell(WorkloadKind::Tnt, flavor, &env_label);
            let it = cell.first().expect("one iteration per cell");
            let p = it.tick_percentiles();
            rows.push(vec![
                label.to_string(),
                flavor.to_string(),
                format!("{:.1}", p.mean),
                format!("{:.1}", p.p50),
                format!("{:.1}", p.p75),
                format!("{:.1}", p.max),
                format!("{:.3}", it.instability_ratio),
                if it.crashed() {
                    "crashed".into()
                } else {
                    "-".into()
                },
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "node",
                "server",
                "mean [ms]",
                "median",
                "p75",
                "max",
                "ISR",
                "status"
            ],
            &rows
        )
    );
    println!("\nExpected shape (paper): the recommended L node is overloaded (mean tick");
    println!("above or near 50 ms with high ISR); XL improves but remains insufficient;");
    println!("2XL keeps mean tick time acceptable, though variability remains for");
    println!("Minecraft and Forge. PaperMC keeps the lowest mean tick time on every size.");
}
