//! Noise-floor calibration probe: wall-clock cost of an *empty* server tick.
//!
//! A Control-workload server with no connected players does no modeled work
//! beyond idle upkeep, so its per-tick wall-clock time is the substrate +
//! harness overhead every other measurement sits on top of. The probe runs
//! several independent servers and reports each run's median tick plus the
//! spread *between* runs: a substrate-optimisation claim (palette storage,
//! dirty-column relighting, the tick arena) is only real if its improvement
//! exceeds this spread — the noise-floor methodology of Reichelt et al.
//! (arXiv:2411.05491), recorded in `docs/ARCHITECTURE.md`.
//!
//! CI runs this binary as a smoke check: it must complete and print, but the
//! timings themselves are environment-dependent and never asserted.

use std::time::Instant;

use cloud_sim::environment::Environment;
use meterstick_bench::print_header;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_server::{GameServer, ServerConfig, ServerFlavor};

/// Ticks discarded per run before sampling starts (join spike, cache warmup).
const WARMUP_TICKS: u32 = 50;
/// Ticks sampled per run.
const MEASURED_TICKS: usize = 400;
/// Independent server runs; the spread between their medians is the floor.
const RUNS: usize = 5;

fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

fn main() {
    print_header("noise-floor", "Empty-tick wall-clock baseline and spread");
    let mut medians: Vec<u64> = Vec::with_capacity(RUNS);
    for run in 0..RUNS {
        let built = WorkloadSpec::new(WorkloadKind::Control).build(392_114_485);
        let config = ServerConfig::for_flavor(ServerFlavor::Vanilla);
        let mut server = GameServer::new(config, built.world, built.spawn_point);
        let mut engine = Environment::das5(2).instantiate(1).engine;
        for _ in 0..WARMUP_TICKS {
            server.run_tick(&mut engine);
        }
        let mut samples: Vec<u64> = Vec::with_capacity(MEASURED_TICKS);
        for _ in 0..MEASURED_TICKS {
            let start = Instant::now();
            server.run_tick(&mut engine);
            samples.push(start.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let p10 = samples[samples.len() / 10];
        let p90 = samples[samples.len() * 9 / 10];
        println!(
            "run {run}: median empty tick {:8.2} us   (p10 {:8.2} us, p90 {:8.2} us)",
            micros(median),
            micros(p10),
            micros(p90),
        );
        medians.push(median);
    }
    let lo = *medians.iter().min().expect("RUNS > 0");
    let hi = *medians.iter().max().expect("RUNS > 0");
    let spread_pct = (hi - lo) as f64 / lo.max(1) as f64 * 100.0;
    println!(
        "noise floor: medians span {:.2} us .. {:.2} us  (between-run spread {spread_pct:.1}%)",
        micros(lo),
        micros(hi),
    );
    println!("improvements smaller than the spread are noise, not wins");
}
