//! Table 8 (MF4): share of network messages and bytes related to entities.
//!
//! For every flavor and the Control/Farm/TNT workloads on AWS, prints the
//! percentage of clientbound messages that are entity-related and the
//! percentage of clientbound bytes they account for.

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{duration_from_args, print_header, run_campaign};
use meterstick_workloads::WorkloadKind;
use mlg_protocol::TrafficCategory;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Table 8 (MF4)",
        "Entity-related share of clientbound messages and bytes on AWS",
    );
    let environment = Environment::aws_default();
    let workloads = [WorkloadKind::Control, WorkloadKind::Farm, WorkloadKind::Tnt];
    let campaign = Campaign::new()
        .workloads(workloads)
        .flavors(ServerFlavor::all())
        .environments([environment.clone()])
        .duration_secs(duration_from_args())
        .iterations(1);
    let results = run_campaign(&campaign);

    let mut rows = Vec::new();
    for flavor in ServerFlavor::all() {
        for workload in workloads {
            let cell = results.for_cell(workload, flavor, &environment.label());
            let it = cell.first().expect("one iteration per cell");
            rows.push(vec![
                flavor.to_string(),
                workload.to_string(),
                format!(
                    "{:.1}",
                    it.traffic.message_share_percent(TrafficCategory::Entity)
                ),
                format!(
                    "{:.1}",
                    it.traffic.byte_share_percent(TrafficCategory::Entity)
                ),
                format!("{}", it.traffic.total_messages()),
                format!("{}", it.traffic.total_bytes()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "server",
                "workload",
                "entity msgs [%]",
                "entity bytes [%]",
                "total msgs",
                "total bytes"
            ],
            &rows
        )
    );
    println!("\nExpected shape (paper): entity-related updates account for the large");
    println!("majority of messages but only a small share of bytes (bulk bytes come from");
    println!("chunk data); PaperMC sends a smaller entity share than Minecraft and Forge.");
}
