//! Ablation: which PaperMC optimization buys what?
//!
//! DESIGN.md calls out the Paper flavor's optimizations (asynchronous chat,
//! asynchronous environment processing, the rewritten entity handler, TNT
//! and redstone optimizations) as design choices worth isolating. This
//! binary starts from the Vanilla profile and enables one optimization at a
//! time on the TNT and Farm workloads, reporting mean tick time and ISR.

use cloud_sim::environment::Environment;
use meterstick::report::render_table;
use meterstick_bench::{duration_from_args, print_header};
use meterstick_metrics::trace::TickTrace;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_bots::PlayerEmulation;
use mlg_protocol::netsim::LinkConfig;
use mlg_server::{FlavorProfile, GameServer, ServerConfig, ServerFlavor};

fn profile_variant(name: &str) -> FlavorProfile {
    let vanilla = ServerFlavor::Vanilla.profile();
    let paper = ServerFlavor::Paper.profile();
    match name {
        "vanilla" => vanilla,
        "async chat" => FlavorProfile {
            async_chat: true,
            ..vanilla
        },
        "async environment" => FlavorProfile {
            offload_fraction: paper.offload_fraction,
            ..vanilla
        },
        "entity handler" => FlavorProfile {
            entity_multiplier: paper.entity_multiplier,
            ..vanilla
        },
        "tnt batching" => FlavorProfile {
            explosion_multiplier: paper.explosion_multiplier,
            max_tnt_per_tick: paper.max_tnt_per_tick,
            ..vanilla
        },
        "redstone batching" => FlavorProfile {
            redstone_multiplier: paper.redstone_multiplier,
            lighting_multiplier: paper.lighting_multiplier,
            ..vanilla
        },
        _ => paper,
    }
}

fn run_with_profile(
    workload: WorkloadKind,
    profile: FlavorProfile,
    duration_secs: u64,
) -> (f64, f64, bool) {
    let built = WorkloadSpec::new(workload).build(392_114_485);
    let config = ServerConfig::for_flavor(ServerFlavor::Vanilla);
    let mut server = GameServer::new(config, built.world, built.spawn_point);
    server.set_profile(profile);
    let mut emulation = PlayerEmulation::new(
        built.players.bots,
        built.spawn_point,
        built.players.walk_area,
        built.players.moving,
        LinkConfig::datacenter(),
        7,
    );
    emulation.connect_all(&mut server);
    for (kind, pos) in &built.ambient_entities {
        server.spawn_entity(*kind, *pos);
    }
    if let Some(delay) = built.tnt_fuse_delay_ticks {
        server.schedule_tnt_ignition(delay);
    }
    let mut engine = Environment::aws_default().instantiate(11).engine;
    let mut trace = TickTrace::new(50.0);
    let duration_ms = duration_secs as f64 * 1_000.0;
    let mut crashed = false;
    while server.clock_ms() < duration_ms {
        let summary = emulation.step(&mut server, &mut engine);
        trace.push(summary.record);
        if summary.crash.is_some() {
            crashed = true;
            break;
        }
    }
    (
        trace.percentiles().mean,
        trace.instability_ratio(Some(duration_secs * 20)),
        crashed,
    )
}

fn main() {
    print_header(
        "Ablation",
        "PaperMC optimizations enabled one at a time (AWS, TNT and Farm workloads)",
    );
    let duration = duration_from_args();
    let variants = [
        "vanilla",
        "async chat",
        "async environment",
        "entity handler",
        "tnt batching",
        "redstone batching",
        "full paper",
    ];
    for workload in [WorkloadKind::Tnt, WorkloadKind::Farm] {
        println!("\n--- {workload} workload ---");
        let mut rows = Vec::new();
        for variant in variants {
            let (mean, isr, crashed) =
                run_with_profile(workload, profile_variant(variant), duration);
            rows.push(vec![
                variant.to_string(),
                format!("{mean:.1}"),
                format!("{isr:.3}"),
                if crashed {
                    "crashed".into()
                } else {
                    "-".into()
                },
            ]);
        }
        println!(
            "{}",
            render_table(
                &["optimization enabled", "mean tick [ms]", "ISR", "status"],
                &rows
            )
        );
    }
    println!("\nExpected shape: the entity handler and TNT batching dominate the TNT-workload");
    println!("improvement; redstone batching and async environment matter most for Farm;");
    println!("async chat changes tick time very little (it helps response time instead).");
}
