//! Figure 11 (MF4): distribution of tick time across MLG operations.
//!
//! For every flavor and the Control/Farm/TNT workloads on AWS, prints the
//! share of tick time attributed to block add/remove, block updates, entity
//! simulation, player handling, waiting, and other work.

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{duration_from_args, print_header, run_campaign};
use meterstick_metrics::distribution::TickOperation;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Figure 11 (MF4)",
        "Tick-time distribution per operation on AWS",
    );
    let environment = Environment::aws_default();
    let workloads = [WorkloadKind::Control, WorkloadKind::Farm, WorkloadKind::Tnt];
    let campaign = Campaign::new()
        .workloads(workloads)
        .flavors(ServerFlavor::all())
        .environments([environment.clone()])
        .duration_secs(duration_from_args())
        .iterations(1);
    let results = run_campaign(&campaign);

    let mut rows = Vec::new();
    for workload in workloads {
        for flavor in ServerFlavor::all() {
            let cell = results.for_cell(workload, flavor, &environment.label());
            let it = cell.first().expect("one iteration per cell");
            let d = it.tick_distribution();
            rows.push(vec![
                workload.to_string(),
                flavor.to_string(),
                format!("{:.1}%", d.share_percent(TickOperation::BlockAddRemove)),
                format!("{:.1}%", d.share_percent(TickOperation::BlockUpdate)),
                format!("{:.1}%", d.share_percent(TickOperation::Entities)),
                format!("{:.1}%", d.share_percent(TickOperation::Players)),
                format!(
                    "{:.1}%",
                    d.share_percent(TickOperation::WaitBefore)
                        + d.share_percent(TickOperation::WaitAfter)
                ),
                format!("{:.1}%", d.share_percent(TickOperation::Other)),
                format!("{:.1}%", d.busy_share_percent(TickOperation::Entities)),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "server",
                "blk add/rem",
                "blk update",
                "entities",
                "players",
                "wait",
                "other",
                "entities(non-idle)"
            ],
            &rows
        )
    );
    println!("\nExpected shape (paper): entity processing accounts for the majority of");
    println!("non-waiting tick time everywhere, with PaperMC showing a visibly smaller");
    println!("entity share than Minecraft and Forge, especially under TNT.");
}
