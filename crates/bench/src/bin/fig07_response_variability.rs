//! Figure 7 (MF1): game response time under environment-based workloads.
//!
//! Boxplots (5th/95th percentile whiskers, mean, max) of player-action
//! response time for Minecraft and Forge on AWS under the Control, Farm and
//! TNT workloads. PaperMC is omitted exactly as in the paper: its
//! asynchronous chat thread answers the probe without waiting for the tick.

use cloud_sim::environment::Environment;
use meterstick::report::{ascii_boxplot, render_table};
use meterstick_bench::{duration_from_args, print_header, run};
use meterstick_metrics::response::UNPLAYABLE_MS;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Figure 7 (MF1)",
        "Response-time variability for Minecraft and Forge on AWS",
    );
    let duration = duration_from_args();
    let flavors = [ServerFlavor::Vanilla, ServerFlavor::Forge];
    let mut rows = Vec::new();
    let mut gauges = Vec::new();
    for workload in [WorkloadKind::Control, WorkloadKind::Farm, WorkloadKind::Tnt] {
        for flavor in flavors {
            let results = run(workload, &[flavor], Environment::aws_default(), duration, 1);
            let it = &results.iterations()[0];
            let r = it.response;
            rows.push(vec![
                workload.to_string(),
                flavor.to_string(),
                format!("{:.1}", r.percentiles.p5),
                format!("{:.1}", r.percentiles.p50),
                format!("{:.1}", r.percentiles.mean),
                format!("{:.1}", r.percentiles.p95),
                format!("{:.1}", r.percentiles.max),
                format!("{:.1}x", r.max_over_mean),
                format!("{:.1}x", r.max_over_unplayable),
            ]);
            gauges.push((format!("{workload}/{flavor}"), r.boxplot));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "server",
                "p5",
                "median",
                "mean",
                "p95",
                "max",
                "max/mean",
                "max/unplayable"
            ],
            &rows
        )
    );
    println!("\nresponse-time gauges (0..600 ms; unplayable at {UNPLAYABLE_MS} ms):");
    for (label, boxplot) in gauges {
        println!("{label:>18} {}", ascii_boxplot(&boxplot, 600.0, 60));
    }
    println!("\nExpected shape (paper): means/medians look acceptable while maxima exceed");
    println!("the unplayable threshold by large factors; TNT and Farm are far worse than Control.");
}
