//! Table 7: hardware recommendations from commercial MLG hosting providers.

use cloud_sim::recommendations::{summarize, table7_recommendations};
use meterstick::report::render_table;
use meterstick_bench::print_header;

fn main() {
    print_header("Table 7", "Hosting-provider hardware recommendations");
    let recs = table7_recommendations();
    let rows: Vec<Vec<String>> = recs
        .iter()
        .map(|r| {
            vec![
                r.provider.to_string(),
                format!("{:.1}", r.ram_gb),
                r.vcpus.map_or("NP".to_string(), |v| v.to_string()),
                r.cpu_ghz.map_or("NP".to_string(), |g| format!("{g:.1}")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["service", "RAM [GB]", "vCPU [#]", "CPU speed [GHz]"],
            &rows
        )
    );
    let summary = summarize(&recs);
    println!(
        "Most common configuration: {} vCPU, {} GB RAM across {} providers (mean advertised clock {:.1} GHz)",
        summary.modal_vcpus, summary.modal_ram_gb, summary.providers, summary.mean_cpu_ghz
    );
    println!("MF5 shows this recommended size to be insufficient — see fig12_node_sizes.");
}
