//! Figure 8 (MF2): ISR for each MLG and workload on AWS and DAS-5.
//!
//! Instability Ratio of every flavor under the five workloads in three
//! environment configurations: AWS 2-core, DAS-5 2-core and DAS-5 16-core.
//! In the paper the Lag workload crashes every MLG on AWS; the reproduction
//! reports the same crash.
//!
//! The whole figure is one factorial campaign — 5 workloads × 3 flavors ×
//! 3 environments in a single `Campaign::run` call.

use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{duration_from_args, figure8_environments, print_header, run_campaign};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Figure 8 (MF2)",
        "ISR per MLG and workload on AWS and DAS-5",
    );
    let environments = figure8_environments();
    let campaign = Campaign::new()
        .workloads(WorkloadKind::all())
        .flavors(ServerFlavor::all())
        .environments(environments.iter().cloned())
        .duration_secs(duration_from_args())
        .iterations(1);
    let results = run_campaign(&campaign);

    for environment in &environments {
        println!("\n--- {} ---", environment.label());
        let mut rows = Vec::new();
        for workload in WorkloadKind::all() {
            let mut row = vec![workload.to_string()];
            for flavor in ServerFlavor::all() {
                let cell = results.for_cell(workload, flavor, &environment.label());
                let it = cell.first().expect("one iteration per cell");
                if it.crashed() {
                    row.push("crashed".into());
                } else {
                    row.push(format!("{:.3}", it.instability_ratio));
                }
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(&["workload", "Minecraft", "Forge", "PaperMC"], &rows)
        );
    }
    println!("\nExpected shape (paper): environment-based workloads (Farm, TNT, Lag) have");
    println!("much higher ISR than Control/Players; Lag crashes on AWS but not on DAS-5;");
    println!("PaperMC is least affected; the 16-core DAS-5 node changes little because the");
    println!("game loop is single-threaded.");
}
