//! Ablation: which part of the cloud-interference model drives variability?
//!
//! Toggles the components of the AWS interference model (placement
//! heterogeneity, CPU-steal episodes, scheduler jitter, burst-credit
//! throttling) one at a time and reports the inter-iteration ISR spread of
//! the Players workload, identifying which component is responsible for the
//! paper's MF3 observation.

use cloud_sim::environment::Environment;
use cloud_sim::interference::InterferenceProfile;
use cloud_sim::node::NodeType;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{print_header, run_campaign};
use meterstick_metrics::stats::Percentiles;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn variant(name: &str) -> Environment {
    let dedicated = InterferenceProfile::dedicated();
    let aws = InterferenceProfile::aws();
    let mut node = NodeType::aws_t3_large();
    let profile = match name {
        "none (dedicated)" => dedicated,
        "placement only" => InterferenceProfile {
            placement_factor_range: aws.placement_factor_range,
            ..dedicated
        },
        "steal episodes only" => InterferenceProfile {
            steal_episode_probability: aws.steal_episode_probability,
            steal_multiplier_range: aws.steal_multiplier_range,
            steal_duration_ticks: aws.steal_duration_ticks,
            ..dedicated
        },
        "scheduler jitter only" => InterferenceProfile {
            scheduler_jitter: aws.scheduler_jitter,
            ..dedicated
        },
        "burst credits only" => {
            // Keep interference quiet but leave the node burstable.
            dedicated
        }
        _ => aws,
    };
    if name != "burst credits only" && name != "full AWS" {
        node.burstable = false;
    }
    let mut env = Environment::aws(node);
    env.profile = profile;
    env
}

fn main() {
    print_header(
        "Ablation",
        "Cloud interference model components (Players workload, 8 iterations each)",
    );
    let variants = [
        "none (dedicated)",
        "placement only",
        "steal episodes only",
        "scheduler jitter only",
        "burst credits only",
        "full AWS",
    ];
    // Every variant produces the same "AWS 2-core" label, so each gets its
    // own single-environment campaign instead of one shared environment
    // dimension.
    let mut rows = Vec::new();
    for name in variants {
        let campaign = Campaign::new()
            .workloads([WorkloadKind::Players])
            .flavors([ServerFlavor::Vanilla])
            .environments([variant(name)])
            .duration_secs(15)
            .iterations(8);
        let results = run_campaign(&campaign);
        let isr = results.isr_values(ServerFlavor::Vanilla);
        let ticks = results.pooled_tick_times(ServerFlavor::Vanilla);
        let isr_p = Percentiles::of(&isr);
        let tick_p = Percentiles::of(&ticks);
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", isr_p.p50),
            format!("{:.4}", isr_p.iqr()),
            format!("{:.4}", isr_p.max),
            format!("{:.1}", tick_p.mean),
            format!("{:.1}", tick_p.max),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "interference components",
                "ISR median",
                "ISR IQR",
                "ISR max",
                "mean tick [ms]",
                "max tick [ms]"
            ],
            &rows
        )
    );
    println!("\nExpected shape: steal episodes and placement heterogeneity produce most of");
    println!("the inter-iteration spread; scheduler jitter alone is nearly harmless; burst");
    println!("credits only matter for workloads that exceed the baseline CPU share.");
}
