//! Long-horizon smoke: four simulated hours through the windowed streaming
//! aggregator, asserting that metric memory stays flat with horizon.
//!
//! Runs one four-hour Control iteration on the diurnal AWS environment
//! with `Campaign::metrics_window` enabled: ticks fold into one-minute
//! window summaries (1 200 ticks each) with at most the trailing hour (60
//! windows) retained, instead of materializing a ~288 000-record trace.
//! The binary asserts the memory bounds — retained windows and retained
//! trace records never exceed their caps while the closed-window counter
//! proves every executed tick was folded — and prints the retained tail so
//! the diurnal drift is visible: the run starts Thursday 16:00 and crosses
//! into the evening tenancy peak at 17:00.
//!
//! CI runs this as the long-horizon smoke job; the asserts make memory
//! growth a hard failure, not a graph someone has to look at.

use cloud_sim::environment::Environment;
use cloud_sim::node::NodeType;
use cloud_sim::temporal::StartTime;
use meterstick::campaign::Campaign;
use meterstick_bench::{print_header, run_campaign, tick_threads_from_args};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// Simulated horizon: four hours of wall-clock at 20 Hz.
const HORIZON_SECS: u64 = 4 * 3600;
/// Ticks per aggregation window: one simulated minute.
const WINDOW_TICKS: u32 = 1_200;
/// Retained window summaries: the trailing simulated hour.
const MAX_WINDOWS: u32 = 60;

fn main() {
    print_header(
        "long-horizon-smoke",
        "4 simulated hours through the windowed aggregator (flat memory)",
    );
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Control])
        .flavors([ServerFlavor::Vanilla])
        .environments([Environment::aws_diurnal(NodeType::aws_t3_xlarge())])
        .tick_threads([tick_threads_from_args()])
        .start_times([StartTime::from_day_hour_minute(3, 16, 0)])
        .metrics_window(WINDOW_TICKS, MAX_WINDOWS)
        .duration_secs(HORIZON_SECS)
        .seed(20_260_807)
        .iterations(1);
    let results = run_campaign(&campaign);
    let it = &results.iterations()[0];
    let windowed = it
        .windowed
        .as_ref()
        .expect("metrics_window campaigns produce a windowed report");

    // The loop runs by virtual time, so overloaded ticks (period > budget)
    // shrink the executed count below the 20 Hz plan — the folded-window
    // expectation comes from what actually executed.
    let expected_windows = it.ticks_executed.div_ceil(u64::from(WINDOW_TICKS));
    println!(
        "horizon: {HORIZON_SECS} simulated seconds ({} ticks)",
        it.ticks_executed
    );
    println!(
        "windows closed: {} (expected {expected_windows}), retained: {} (cap {MAX_WINDOWS})",
        windowed.windows_closed,
        windowed.windows.len(),
    );
    println!(
        "retained trace records: {} (cap {WINDOW_TICKS})",
        it.trace.len()
    );
    println!(
        "cumulative: mean {:.2} ms, CoV {:.3}, ISR {:.4}",
        windowed.mean_ms, windowed.cov, windowed.instability_ratio
    );
    println!("\nretained window tail (one row per 10 simulated minutes):");
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>10}",
        "window", "mean [ms]", "p95 [ms]", "CoV", "overloaded"
    );
    for w in windowed.windows.iter().step_by(10) {
        println!(
            "{:>8} {:>12.2} {:>10.2} {:>8.3} {:>10}",
            w.index, w.mean_ms, w.p95_ms, w.cov, w.overloaded
        );
    }

    // The actual smoke assertions: flat memory, full-horizon coverage.
    assert!(
        !it.crashed(),
        "the XL node should survive the Control workload: {:?}",
        it.crashed
    );
    assert_eq!(
        windowed.windows_closed, expected_windows,
        "every executed tick of the horizon must be folded into a window"
    );
    assert!(
        windowed.windows.len() <= MAX_WINDOWS as usize,
        "retained window history must stay bounded, got {}",
        windowed.windows.len()
    );
    assert!(
        it.trace.len() <= WINDOW_TICKS as usize,
        "retained trace must be bounded to the final window, got {}",
        it.trace.len()
    );
    assert_eq!(
        windowed.total_ticks, it.ticks_executed,
        "the aggregator must have seen every executed tick"
    );
    println!(
        "\nlong-horizon smoke: OK (memory flat, {} ticks folded)",
        windowed.total_ticks
    );
}
