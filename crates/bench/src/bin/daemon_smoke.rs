//! Daemon smoke probe: the resident benchmark daemon must serve live
//! metrics while a campaign runs, fire an alert on synthetic overload, and
//! keep memory flat over a long soak.
//!
//! Two phases, both asserted (the process exits non-zero on any failure,
//! which is what the CI job keys off):
//!
//! 1. **Soak** — a ≥10k-tick Control campaign through the daemon. The
//!    rolling history must stay at its window bound and the fired-alert
//!    log under its cap throughout, which is the structural guarantee that
//!    daemon memory does not grow with uptime.
//! 2. **Overload + HTTP surface** — a Lag-workload campaign (ISR ≈ 0.78 on
//!    the DAS-5 substrate, far past the 50% tick-overload threshold) runs
//!    while the probe scrapes `/status`, `/metrics` (Prometheus text) and
//!    `/events` (SSE) over real HTTP, waits for the `tick-overload` alert
//!    to land in `/alerts`, then shuts the daemon down via `POST /shutdown`
//!    and verifies the sink stack drained exactly once.
//!
//! Threading note: the campaign runs on a scoped thread so the probe's
//! main thread can drive the HTTP surface; scoped threads are joined
//! before the phase returns (no bare `thread::spawn` here).

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use cloud_sim::environment::Environment;
use meterstick::campaign::{CampaignPlan, IterationJob};
use meterstick::{Campaign, IterationResult, NullSink, ResultSink, TickSample};
use meterstick_bench::print_header;
use meterstick_daemon::{http, AlertEngine, Daemon, DaemonConfig};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// Soak length in ticks (20 Hz × 500 virtual seconds).
const SOAK_TICKS: u64 = 10_000;
/// History window for both phases — small on purpose so a leak (history
/// growing past its window) is caught immediately.
const WINDOW: usize = 512;

/// Counts sink callbacks so phase 2 can assert the stack drained once.
#[derive(Default)]
struct CountingSink {
    ticks: AtomicU64,
    ends: AtomicU64,
}

impl ResultSink for &CountingSink {
    fn on_campaign_start(&mut self, _plan: &CampaignPlan) {}

    fn on_tick(&mut self, _job: &IterationJob, _sample: &TickSample) {
        self.ticks.fetch_add(1, Ordering::SeqCst);
    }

    fn on_result(&mut self, _job: &IterationJob, _result: &IterationResult) {}

    fn on_campaign_end(&mut self) {
        self.ends.fetch_add(1, Ordering::SeqCst);
    }
}

fn campaign(kind: WorkloadKind, duration_secs: u64) -> Campaign {
    Campaign::new()
        .workloads([kind])
        .flavors([ServerFlavor::Vanilla])
        .environments([Environment::das5(2)])
        .duration_secs(duration_secs)
        .iterations(1)
}

/// Polls `cond` until it holds or `limit` elapses.
fn wait_for(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < limit {
        if cond() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Phase 1: the windowed history and bounded alert log are what keep a
/// resident daemon's memory flat; soak past 10k ticks and verify both.
fn soak() {
    let daemon = Daemon::new(DaemonConfig {
        window: WINDOW,
        ..DaemonConfig::default()
    });
    let handle = daemon.handle();
    // 520 virtual seconds of Control ≈ 10.4k ticks through the observer
    // (the iteration trims a handful of warmup ticks off the nominal
    // 20 Hz × duration count, so leave margin over SOAK_TICKS).
    let mut sink = NullSink;
    let results = daemon
        .run_campaign(&campaign(WorkloadKind::Control, 520), &mut sink)
        .expect("soak campaign is valid");
    assert_eq!(results.len(), 1);
    handle.with_stats(|stats| {
        assert!(
            stats.history.total_ticks() >= SOAK_TICKS,
            "soak too short: {} ticks",
            stats.history.total_ticks()
        );
        assert!(
            stats.history.len() <= WINDOW,
            "history leaked past its window: {} > {WINDOW}",
            stats.history.len()
        );
        assert!(stats.alerts.fired().count() <= AlertEngine::FIRED_LOG_CAP);
        // Control never overloads; a phantom alert here means the rules or
        // the modeled budget regressed.
        assert_eq!(stats.alerts.fired_total(), 0, "Control must not alert");
    });
    println!(
        "soak: {} ticks, history bounded at {} entries, 0 alerts",
        handle.with_stats(|s| s.history.total_ticks()),
        WINDOW,
    );
}

/// Phase 2: live HTTP surface + alert on synthetic overload.
fn overload_over_http() {
    let daemon = Daemon::new(DaemonConfig {
        window: WINDOW,
        ..DaemonConfig::default()
    });
    let handle = daemon.handle();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("bound socket has an address");
    let server = http::spawn(listener, handle.clone()).expect("HTTP thread starts");

    let sink = CountingSink::default();
    thread::scope(|scope| {
        let runner = scope.spawn(|| {
            let mut observer = &sink;
            // Deliberately longer than the probe needs: the HTTP shutdown
            // below is what ends it.
            daemon
                .run_campaign(&campaign(WorkloadKind::Lag, 3_600), &mut observer)
                .expect("overload campaign is valid")
        });
        assert!(
            wait_for(Duration::from_secs(30), || {
                sink.ticks.load(Ordering::SeqCst) > 30
            }),
            "campaign never started ticking"
        );

        let (status, body) = http::fetch(addr, "GET", "/status", usize::MAX).expect("/status");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"state\":\"running\""), "{body}");

        let (status, body) = http::fetch(addr, "GET", "/metrics", usize::MAX).expect("/metrics");
        assert!(status.contains("200"), "{status}");
        for needle in [
            "meterstick_ticks_total",
            "meterstick_window_overload_ratio",
            "meterstick_stage_busy_ms_mean{stage=\"entity\"}",
            "meterstick_last_iteration_isr",
        ] {
            assert!(body.contains(needle), "/metrics missing {needle}:\n{body}");
        }

        let (status, events) = http::fetch(addr, "GET", "/events", 4_096).expect("/events");
        assert!(status.contains("200"), "{status}");
        assert!(
            events.contains("data: {\"type\":\"tick\""),
            "SSE stream carried no tick events:\n{events}"
        );

        // The Lag workload overloads ~78% of ticks; the seeded
        // tick-overload rule (>50% of the window, min 20 ticks) must fire.
        assert!(
            wait_for(Duration::from_secs(30), || {
                let (_, alerts) = http::fetch(addr, "GET", "/alerts", usize::MAX).expect("/alerts");
                alerts.contains("tick-overload")
            }),
            "no tick-overload alert on a Lag workload"
        );

        let (status, _) = http::fetch(addr, "POST", "/shutdown", usize::MAX).expect("/shutdown");
        assert!(status.contains("200"), "{status}");
        runner.join().expect("campaign thread must not panic");
    });
    handle.mark_finished();
    server.join().expect("HTTP thread exits after shutdown");
    assert_eq!(
        sink.ends.load(Ordering::SeqCst),
        1,
        "sink stack must drain exactly once"
    );
    println!(
        "overload: tick-overload alert fired, {} ticks observed over HTTP, clean shutdown",
        sink.ticks.load(Ordering::SeqCst),
    );
}

fn main() {
    print_header(
        "daemon-smoke",
        "Resident daemon: soak, live metrics, alert on overload",
    );
    soak();
    overload_over_http();
    println!("daemon smoke: OK");
}
