//! Figure 10 (MF3): tick time and ISR across many iterations of the Players
//! workload on DAS-5, Azure and AWS.
//!
//! The paper runs 50 iterations per environment; pass `--full` for 50, the
//! default is 10 so the figure regenerates quickly.

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{print_header, run_campaign};
use meterstick_metrics::stats::Percentiles;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Figure 10 (MF3)",
        "Tick time and ISR distribution across iterations of the Players workload",
    );
    let full = std::env::args().any(|a| a == "--full");
    let iterations = if full { 50 } else { 10 };
    let duration = if full { 60 } else { 20 };
    let environments = vec![
        Environment::das5(2),
        Environment::azure_default(),
        Environment::aws_default(),
    ];
    // 3 environments × 3 flavors × N iterations as one campaign.
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Players])
        .flavors(ServerFlavor::all())
        .environments(environments.iter().cloned())
        .duration_secs(duration)
        .iterations(iterations);
    let results = run_campaign(&campaign);

    let mut isr_rows = Vec::new();
    let mut tick_rows = Vec::new();
    let mut das5_max_isr: f64 = 0.0;
    let mut cloud_min_isr = f64::INFINITY;
    for environment in &environments {
        for flavor in ServerFlavor::all() {
            let cell = results.for_cell(WorkloadKind::Players, flavor, &environment.label());
            let isr: Vec<f64> = cell.iter().map(|r| r.instability_ratio).collect();
            let isr_p = Percentiles::of(&isr);
            let ticks: Vec<f64> = cell.iter().flat_map(|r| r.trace.busy_durations()).collect();
            let tick_p = Percentiles::of(&ticks);
            if environment.label().starts_with("DAS-5") {
                das5_max_isr = das5_max_isr.max(isr_p.max);
            } else {
                cloud_min_isr = cloud_min_isr.min(isr_p.min);
            }
            isr_rows.push(vec![
                environment.label(),
                flavor.to_string(),
                format!("{:.4}", isr_p.min),
                format!("{:.4}", isr_p.p50),
                format!("{:.4}", isr_p.max),
                format!("{:.4}", isr_p.iqr()),
            ]);
            tick_rows.push(vec![
                environment.label(),
                flavor.to_string(),
                format!("{:.1}", tick_p.p50),
                format!("{:.1}", tick_p.mean),
                format!("{:.1}", tick_p.iqr()),
                format!("{:.1}", tick_p.max),
            ]);
        }
    }
    println!("\nISR distribution over {iterations} iterations:");
    println!(
        "{}",
        render_table(
            &["environment", "server", "min", "median", "max", "IQR"],
            &isr_rows
        )
    );
    println!("tick-time distribution (pooled over iterations) [ms]:");
    println!(
        "{}",
        render_table(
            &["environment", "server", "median", "mean", "IQR", "max"],
            &tick_rows
        )
    );
    println!("\nKey MF3 check: minimum cloud ISR ({cloud_min_isr:.4}) vs maximum DAS-5 ISR ({das5_max_isr:.4})");
    println!("Expected shape (paper): clouds show higher medians and far larger");
    println!("inter-iteration IQR than the self-hosted DAS-5 node.");
}
