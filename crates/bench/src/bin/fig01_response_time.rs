//! Figure 1: Minecraft response time in the AWS cloud, Control vs Farm world.
//!
//! The paper's opening figure shows that even with a single connected player,
//! the vanilla server's response time on an AWS node ranges from good
//! (< 60 ms) to unplayable (> 118 ms) once a resource-farm world is loaded.

use cloud_sim::environment::Environment;
use meterstick::report::{ascii_boxplot, render_table};
use meterstick_bench::{duration_from_args, print_header, run};
use meterstick_metrics::response::{NOTICEABLE_DELAY_MS, UNPLAYABLE_MS};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Figure 1",
        "Minecraft response time in the AWS cloud (Control vs Farm)",
    );
    let duration = duration_from_args();
    let mut rows = Vec::new();
    let mut gauges = Vec::new();
    for workload in [WorkloadKind::Control, WorkloadKind::Farm] {
        let results = run(
            workload,
            &[ServerFlavor::Vanilla],
            Environment::aws_default(),
            duration,
            1,
        );
        let it = &results.iterations()[0];
        let r = it.response;
        rows.push(vec![
            workload.to_string(),
            format!("{}", it.response_samples.len()),
            format!("{:.1}", r.percentiles.p50),
            format!("{:.1}", r.percentiles.mean),
            format!("{:.1}", r.percentiles.p95),
            format!("{:.1}", r.percentiles.max),
            format!("{:.0}%", r.noticeable_fraction * 100.0),
            format!("{:.0}%", r.unplayable_fraction * 100.0),
        ]);
        gauges.push((workload.to_string(), it.response.boxplot));
    }
    println!(
        "{}",
        render_table(
            &["world", "samples", "median", "mean", "p95", "max", ">60ms", ">118ms"],
            &rows
        )
    );
    println!("response time distribution (0..300 ms, thresholds: noticeable {NOTICEABLE_DELAY_MS} ms, unplayable {UNPLAYABLE_MS} ms):");
    for (label, boxplot) in gauges {
        println!("{label:>8} {}", ascii_boxplot(&boxplot, 300.0, 60));
    }
    println!("\nExpected shape (paper): Farm shifts the distribution right and past the");
    println!("noticeable/unplayable thresholds while Control stays mostly below them.");
}
