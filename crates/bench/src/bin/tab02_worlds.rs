//! Tables 2 and 3: the workload worlds and the Farm world's constructs.

use meterstick::report::render_table;
use meterstick_bench::print_header;
use meterstick_workloads::catalog::{table2_worlds, table3_constructs};
use meterstick_workloads::WorkloadSpec;

fn main() {
    print_header("Tables 2 & 3", "Workload worlds and Farm constructs");

    println!("\nTable 2: Minecraft worlds used as workload starting points");
    let rows: Vec<Vec<String>> = table2_worlds()
        .iter()
        .map(|w| {
            let built = WorkloadSpec::new(w.kind).build(392_114_485);
            vec![
                w.kind.to_string(),
                w.properties.to_string(),
                format!("{:.1}", w.original_size_mb),
                format!("{}", built.world.loaded_chunk_count()),
                format!("{}", built.world.total_non_air_blocks()),
                built.description.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "name",
                "properties",
                "orig. size [MB]",
                "chunks",
                "blocks",
                "reproduction"
            ],
            &rows
        )
    );

    println!("Table 3: simulated constructs in the Farm world");
    let rows: Vec<Vec<String>> = table3_constructs()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.amount.to_string(),
                c.author.to_string(),
                format!("{:.1}", c.popularity_million_views),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["name", "amount", "author", "popularity [10^6 views]"],
            &rows
        )
    );
}
