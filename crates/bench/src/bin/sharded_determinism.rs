//! Sharded-tick determinism probe: runs the Folia-like sharded flavor over
//! every workload and prints one summary row per cell.
//!
//! The point of this binary is the `--tick-threads N` flag: running it
//! twice with different settings and diffing the `--csv` outputs must
//! produce **zero differences** — the sharded tick pipeline is bit-identical
//! at any worker-thread count. CI does exactly that.

use cloud_sim::environment::Environment;
use cloud_sim::node::NodeType;
use cloud_sim::temporal::StartTime;
use meterstick::campaign::Campaign;
use meterstick_bench::{duration_from_args, print_header, run_campaigns, tick_threads_from_args};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "sharded-determinism",
        "Sharded tick pipeline: thread-count invariance probe",
    );
    let threads = tick_threads_from_args();
    let campaign = Campaign::new()
        .workloads([
            WorkloadKind::Control,
            WorkloadKind::Tnt,
            WorkloadKind::Farm,
            WorkloadKind::Lag,
            // The player-heavy crowd: 220 clustered bots emitting movement
            // AND block actions, so the *player-handler* stage's shard
            // batching (interior parallel phase + serial escalation of
            // cross-shard edits) is exercised, not just terrain/entities.
            WorkloadKind::Crowd,
            // The scaled-population swarm: 5,000 scattered builder bots,
            // disseminated through per-packet area-of-interest sets. This
            // is the one workload where interest sets differ per player,
            // so the bucket-grid interest computation itself is pinned
            // thread-count invariant here (and overload crash timing with
            // it — the swarm deliberately drives the server past the
            // keep-alive window, like the paper's MF2 finding at 10-100x
            // population).
            WorkloadKind::Horde,
        ])
        // Folia only: serial flavors never enter the tick pipeline, so
        // their thread invariance is structural (tick_threads is excluded
        // from seed derivation and unused on the serial path) — sweeping
        // them here would just run identical cells twice per thread count.
        .flavors([ServerFlavor::Folia])
        .environments([Environment::das5(4)])
        .tick_threads([threads])
        // Both partition architectures are pinned: the static stripes and
        // the adaptive quadtree (whose split/merge decisions derive from
        // merged load reports and must replay identically at any thread
        // count).
        .shard_rebalance([false, true])
        // Both lighting architectures are pinned too: eager in-stage
        // relighting and the cross-tick pipelined lighting stage (whose
        // one-tick-lagged queue must replay identically at any thread
        // count).
        .eager_lighting([true, false])
        .duration_secs(duration_from_args().min(10))
        .iterations(1);
    // Temporal twin: the diurnal tenancy process layered over AWS, swept
    // across an off-peak and a peak start of the simulated week. The rows
    // (trailing `start_time` column included) must be just as bit-identical
    // across `--tick-threads` — the tenancy process draws from its own
    // counter-based stream keyed on `(seed, start_time, tick)`, never from
    // the tick pipeline's execution order.
    let temporal = Campaign::new()
        .workloads([WorkloadKind::Tnt, WorkloadKind::Lag])
        .flavors([ServerFlavor::Folia])
        .environments([Environment::aws_diurnal(NodeType::aws_t3_large())])
        .tick_threads([threads])
        .start_times([
            StartTime::from_day_hour_minute(0, 4, 0),
            StartTime::from_day_hour_minute(4, 20, 30),
        ])
        .duration_secs(duration_from_args().min(10))
        .iterations(1);
    let all_results = run_campaigns(&[&campaign, &temporal]);
    println!("tick_threads = {threads}");
    println!(
        "{:<10} {:<10} {:>6} {:>10} {:>9}",
        "workload", "flavor", "iters", "mean ISR", "crashes"
    );
    for results in &all_results {
        for cell in results.cell_summaries() {
            println!(
                "{:<10} {:<10} {:>6} {:>10.6} {:>9}",
                cell.workload.to_string(),
                cell.flavor.to_string(),
                cell.iterations,
                cell.mean_isr,
                cell.crashes
            );
        }
    }
    println!("(outputs above are independent of --tick-threads by construction)");

    // The dynamic probe above proves determinism on this run; its static
    // twin is detlint. Surfacing the waiver count here keeps the size of
    // the contract's exemption surface visible in every CI determinism log.
    match detlint::lint_workspace(&detlint::workspace_root_from_build()) {
        Ok(report) => println!(
            "detlint: {} finding(s), {} waiver(s) across {} file(s) \
             (static determinism contract; see docs/ARCHITECTURE.md)",
            report.findings.len(),
            report.waivers.len(),
            report.files_scanned,
        ),
        // The probe may run from a stripped artifact with no sources next
        // to it (e.g. a copied release binary); the determinism rows above
        // are still valid, so degrade to a note rather than failing.
        Err(err) => {
            println!("detlint: workspace sources unavailable, skipping static pass ({err})")
        }
    }
}
