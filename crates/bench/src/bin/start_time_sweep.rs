//! Start-time sweep (MF5 under diurnal tenancy): which AWS node size is
//! adequate depends on *when* in the simulated week the server runs.
//!
//! Reruns the Figure 12 node-sizing question on the diurnal AWS environment
//! (`Environment::aws_diurnal`), sweeping the campaign's seed-excluded
//! `start_time` axis across an off-peak and a peak point of the week. Same
//! seeds, same worlds, same interference placement — only the tenancy
//! point process sees a different part of the weekly intensity curve. The
//! printout names the cheapest node size whose mean tick time stays within
//! the 50 ms budget at each start; the evening-peak start needs a bigger
//! node than the early-morning one.
//!
//! The sweep runs the Farm workload rather than Figure 12's TNT cuboid:
//! the detonation chain saturates *every* AWS size under tenancy pressure
//! (no node is ever adequate, so there is nothing to flip), while the
//! steady redstone-farm load sits close enough to the 50 ms budget that
//! the diurnal pressure swing moves nodes across it.
//!
//! Flags: the shared set (`--full`, `--sequential`, `--progress`,
//! `--csv PATH`, `--tick-threads N`) plus `--start-time LIST` to replace
//! the default off-peak/peak pair.

use cloud_sim::environment::Environment;
use cloud_sim::node::NodeType;
use cloud_sim::temporal::StartTime;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{
    duration_from_args, print_header, run_campaign, start_times_from_args, tick_threads_from_args,
};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// Pinned base seed: the off-peak/peak adequacy flip below is asserted with
/// exactly this seed by `tests/end_to_end.rs`.
const SWEEP_SEED: u64 = 20_260_807;

fn main() {
    print_header(
        "start-time-sweep",
        "Farm node sizing across the simulated week (diurnal tenancy)",
    );
    // The tenancy population only matters once the farm's steady load has
    // ramped up, so this sweep always uses the paper's 60 s iterations.
    let duration = duration_from_args().max(60);
    let starts = if std::env::args().any(|a| a == "--start-time") {
        start_times_from_args()
    } else {
        vec![
            // Monday 04:00: weekday trough of the tenancy intensity curve.
            StartTime::from_day_hour_minute(0, 4, 0),
            // Friday 20:30: inside the evening peak window.
            StartTime::from_day_hour_minute(4, 20, 30),
        ]
    };
    let nodes = [
        ("L (t3.large)", NodeType::aws_t3_large()),
        ("XL (t3.xlarge)", NodeType::aws_t3_xlarge()),
        ("2XL (t3.2xlarge)", NodeType::aws_t3_2xlarge()),
    ];
    let campaign = Campaign::new()
        .workloads([WorkloadKind::Farm])
        .flavors([ServerFlavor::Vanilla])
        .environments(
            nodes
                .iter()
                .map(|(_, node)| Environment::aws_diurnal(node.clone())),
        )
        .tick_threads([tick_threads_from_args()])
        .start_times(starts.iter().copied())
        .duration_secs(duration)
        .seed(SWEEP_SEED)
        .iterations(1);
    let results = run_campaign(&campaign);

    let budget_ms = 50.0;
    let mut rows = Vec::new();
    for (s_idx, start) in starts.iter().enumerate() {
        let mut cheapest: Option<&str> = None;
        for (n_idx, (label, _)) in nodes.iter().enumerate() {
            let it = results
                .iterations()
                .iter()
                .zip(results.coords())
                .find(|(_, c)| c.environment == n_idx && c.start_time == s_idx)
                .map(|(r, _)| r)
                .expect("one iteration per node × start cell");
            let p = it.tick_percentiles();
            let adequate = p.mean <= budget_ms && !it.crashed();
            if adequate && cheapest.is_none() {
                cheapest = Some(label);
            }
            rows.push(vec![
                start.to_string(),
                (*label).to_string(),
                format!("{:.1}", p.mean),
                format!("{:.1}", p.p50),
                format!("{:.1}", p.max),
                format!("{:.3}", it.instability_ratio),
                if it.crashed() {
                    "crashed".into()
                } else if adequate {
                    "adequate".into()
                } else {
                    "overloaded".into()
                },
            ]);
        }
        rows.push(vec![
            start.to_string(),
            "=> cheapest adequate".into(),
            cheapest.unwrap_or("none").into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "start",
                "node",
                "mean [ms]",
                "median",
                "max",
                "ISR",
                "status"
            ],
            &rows
        )
    );
    println!("\nExpected shape: at the early-morning start the tenancy process is near");
    println!("its weekday trough and the recommended L node already keeps the mean tick");
    println!("within the 50 ms budget; at the Friday-evening peak resident neighbors");
    println!("inflate steal pressure, the L node overloads, and the cheapest adequate");
    println!("size moves up to XL. Same seeds both ways — only start_time differs.");
}
