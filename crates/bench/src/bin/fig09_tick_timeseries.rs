//! Figure 9 (MF2): tick time over time for each MLG on AWS.
//!
//! Prints a downsampled time series of tick durations for every flavor under
//! the Control, Farm, TNT and Players workloads on the AWS environment (the
//! Lag workload is omitted because it crashes on AWS, as in the paper).

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{duration_from_args, print_header, run_campaign};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header("Figure 9 (MF2)", "Tick time over time on AWS");
    let environment = Environment::aws_default();
    let workloads = [
        WorkloadKind::Control,
        WorkloadKind::Farm,
        WorkloadKind::Tnt,
        WorkloadKind::Players,
    ];
    // One campaign covers the whole figure: 4 workloads × 3 flavors.
    let campaign = Campaign::new()
        .workloads(workloads)
        .flavors(ServerFlavor::all())
        .environments([environment.clone()])
        .duration_secs(duration_from_args())
        .iterations(1);
    let results = run_campaign(&campaign);

    for workload in workloads {
        println!("\n--- {workload} workload (overloaded above 50 ms) ---");
        let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for flavor in ServerFlavor::all() {
            let cell = results.for_cell(workload, flavor, &environment.label());
            let it = cell.first().expect("one iteration per cell");
            series.push((flavor.to_string(), it.trace.time_series(12)));
        }
        // Render one row per sampled time point, one column per flavor.
        let points = series.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
        let mut rows = Vec::new();
        for i in 0..points {
            let t = series[0].1[i].0 / 1_000.0;
            let mut row = vec![format!("{t:.1}s")];
            for (_, s) in &series {
                row.push(format!("{:.1}", s[i].1));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &["time", "Minecraft [ms]", "Forge [ms]", "PaperMC [ms]"],
                &rows
            )
        );
    }
    println!("\nExpected shape (paper): Control is flat and low; Farm fluctuates at high");
    println!("frequency; TNT spikes to very large values after the detonation; PaperMC");
    println!("stays below the 50 ms threshold far more often than Minecraft and Forge.");
}
