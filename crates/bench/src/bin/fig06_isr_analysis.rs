//! Figure 6: numerical analysis of the Instability Ratio.
//!
//! Panel (a): ISR as a function of the outlier period λ for outlier scales
//! s ∈ {2, 10, 20}. Panel (b): two example traces with identical value
//! distributions but an order of magnitude apart in ISR.

use meterstick::report::render_table;
use meterstick_bench::print_header;
use meterstick_metrics::isr::{
    analytical_isr, instability_ratio, synthetic_outlier_trace, IsrParams,
};

fn main() {
    print_header("Figure 6", "Numerical analysis of the Instability Ratio");

    // Panel (a): ISR vs λ for three outlier scales.
    println!("\n(a) ISR for varying outlier period λ (analytical vs trace-based):");
    let mut rows = Vec::new();
    for lambda in [2u32, 5, 10, 25, 50, 75, 100] {
        let mut row = vec![lambda.to_string()];
        for s in [2.0, 10.0, 20.0] {
            let analytical = analytical_isr(s, f64::from(lambda));
            let trace = synthetic_outlier_trace(20_000, lambda as usize, s, 50.0);
            let measured = instability_ratio(&trace, IsrParams::default());
            row.push(format!("{analytical:.3} ({measured:.3})"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "λ",
                "s=2  model (trace)",
                "s=10 model (trace)",
                "s=20 model (trace)"
            ],
            &rows
        )
    );
    println!(
        "Paper reference point: s=10, λ=25 → ISR ≈ 0.26 (here: {:.3})",
        analytical_isr(10.0, 25.0)
    );

    // Panel (b): clustered vs spread outliers.
    println!("\n(b) identical distributions, different order (1000 ticks, 5 outliers ×20):");
    let mut clustered = vec![50.0; 1000];
    for t in clustered.iter_mut().take(5) {
        *t = 1_000.0;
    }
    let mut spread = vec![50.0; 1000];
    for k in 0..5 {
        spread[k * 200 + 100] = 1_000.0;
    }
    let params = IsrParams {
        budget_ms: 50.0,
        expected_ticks: Some(1_000),
    };
    let low = instability_ratio(&clustered, params);
    let high = instability_ratio(&spread, params);
    println!("  Low-ISR trace (outliers clustered at the start): ISR = {low:.4}");
    println!("  High-ISR trace (outliers evenly spread):         ISR = {high:.4}");
    println!(
        "  ratio: {:.1}x (the paper reports an order of magnitude)",
        high / low
    );
}
