//! Table 6: comparison of ISR with existing variability metrics.
//!
//! Shows the property matrix (order dependence, irregular sampling,
//! normalization) and demonstrates the properties numerically on two traces
//! with identical value distributions but different orderings.

use meterstick::report::render_table;
use meterstick_bench::print_header;
use meterstick_metrics::compare::{allan_variance, rfc3550_jitter, std_dev, table6};
use meterstick_metrics::isr::{instability_ratio, IsrParams};

fn main() {
    print_header("Table 6", "ISR vs existing variability metrics");

    println!("\nProperty matrix:");
    let rows: Vec<Vec<String>> = table6()
        .iter()
        .map(|m| {
            let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
            vec![
                m.name.to_string(),
                tick(m.order_dependent),
                tick(m.irregular_sampling),
                tick(m.normalized),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "metric",
                "order dependent",
                "irregular sampling",
                "normalized"
            ],
            &rows
        )
    );

    // Numerical demonstration on clustered vs spread outliers.
    let mut clustered = vec![50.0_f64; 1_000];
    for t in clustered.iter_mut().take(10) {
        *t = 800.0;
    }
    let mut spread = vec![50.0_f64; 1_000];
    for k in 0..10 {
        spread[k * 100 + 50] = 800.0;
    }
    let params = IsrParams::default();
    println!("Numerical demonstration (1000 ticks, 10 outliers of 800 ms):");
    let rows = vec![
        vec![
            "clustered outliers".to_string(),
            format!("{:.1}", std_dev(&clustered)),
            format!("{:.1}", allan_variance(&clustered)),
            format!("{:.2}", rfc3550_jitter(&clustered)),
            format!("{:.4}", instability_ratio(&clustered, params)),
        ],
        vec![
            "spread outliers".to_string(),
            format!("{:.1}", std_dev(&spread)),
            format!("{:.1}", allan_variance(&spread)),
            format!("{:.2}", rfc3550_jitter(&spread)),
            format!("{:.4}", instability_ratio(&spread, params)),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["trace", "std dev", "Allan var", "RFC3550 jitter", "ISR"],
            &rows
        )
    );
    println!("Standard deviation cannot tell the two traces apart; the order-dependent");
    println!("metrics can, and only ISR stays on a normalized 0..1 scale.");
}
