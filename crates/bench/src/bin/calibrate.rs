//! Calibration utility: prints per-workload tick-time statistics for every
//! flavor on the key environments. Not a paper figure; used to sanity-check
//! that the workload magnitudes land in the intended regimes (Control well
//! under the 50 ms budget, Farm/TNT overloading a 2-vCPU cloud node, Lag
//! crashing on AWS but not on DAS-5).

use cloud_sim::environment::Environment;
use meterstick::report::render_table;
use meterstick_bench::run;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    let duration = 20;
    let mut rows = Vec::new();
    for env_fn in [Environment::das5 as fn(u32) -> Environment] {
        let _ = env_fn;
    }
    let environments = vec![Environment::das5(2), Environment::aws_default()];
    for environment in environments {
        for workload in WorkloadKind::all() {
            for flavor in [ServerFlavor::Vanilla, ServerFlavor::Paper] {
                let results = run(workload, &[flavor], environment.clone(), duration, 1);
                let it = &results.iterations()[0];
                let p = it.tick_percentiles();
                rows.push(vec![
                    environment.label(),
                    workload.to_string(),
                    flavor.to_string(),
                    format!("{:.1}", p.mean),
                    format!("{:.1}", p.p50),
                    format!("{:.1}", p.p95),
                    format!("{:.1}", p.max),
                    format!("{:.3}", it.instability_ratio),
                    if it.crashed() { "CRASH".into() } else { "-".into() },
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["env", "workload", "server", "mean", "p50", "p95", "max", "ISR", "status"],
            &rows
        )
    );
}
