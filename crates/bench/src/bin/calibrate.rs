//! Calibration utility: prints per-workload tick-time statistics for every
//! flavor on the key environments. Not a paper figure; used to sanity-check
//! that the workload magnitudes land in the intended regimes (Control well
//! under the 50 ms budget, Farm/TNT overloading a 2-vCPU cloud node, Lag
//! crashing on AWS but not on DAS-5).

use cloud_sim::environment::Environment;
use meterstick::campaign::Campaign;
use meterstick::report::render_table;
use meterstick_bench::{print_header, run_campaign};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

fn main() {
    print_header(
        "Calibration",
        "Tick-time regimes per workload, flavor and environment",
    );
    let environments = vec![Environment::das5(2), Environment::aws_default()];
    let flavors = [ServerFlavor::Vanilla, ServerFlavor::Paper];
    // The whole grid — 2 environments × 5 workloads × 2 flavors — is one
    // factorial campaign.
    let campaign = Campaign::new()
        .workloads(WorkloadKind::all())
        .flavors(flavors)
        .environments(environments.iter().cloned())
        .duration_secs(20)
        .iterations(1);
    let results = run_campaign(&campaign);

    let mut rows = Vec::new();
    for environment in &environments {
        for workload in WorkloadKind::all() {
            for flavor in flavors {
                let cell = results.for_cell(workload, flavor, &environment.label());
                let it = cell.first().expect("one iteration per cell");
                let p = it.tick_percentiles();
                rows.push(vec![
                    environment.label(),
                    workload.to_string(),
                    flavor.to_string(),
                    format!("{:.1}", p.mean),
                    format!("{:.1}", p.p50),
                    format!("{:.1}", p.p95),
                    format!("{:.1}", p.max),
                    format!("{:.3}", it.instability_ratio),
                    if it.crashed() {
                        "CRASH".into()
                    } else {
                        "-".into()
                    },
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["env", "workload", "server", "mean", "p50", "p95", "max", "ISR", "status"],
            &rows
        )
    );
}
