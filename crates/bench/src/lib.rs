//! Shared helpers for the Meterstick benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index); the helpers here keep their
//! output format consistent and their run times reasonable. All experiment
//! execution goes through [`Campaign`] plans; every binary therefore
//! understands the same execution flags:
//!
//! * `--full` — use the paper's 60-second iterations instead of the quick
//!   default;
//! * `--sequential` — run jobs on one thread instead of the default
//!   parallel executor (results are bit-identical either way);
//! * `--progress` — stream one progress line per finished iteration to
//!   stderr;
//! * `--csv PATH` — stream one CSV summary row per finished iteration into
//!   `PATH` as results complete;
//! * `--tick-threads N` — worker threads for the server's sharded tick
//!   pipeline (results are bit-identical at any value; CI diffs the CSVs
//!   of two settings to prove it);
//! * `--start-time LIST` — comma-separated points of the simulated week at
//!   which iterations start (`fri-20:30` labels or plain minutes since
//!   Monday 00:00). A seed-excluded sweep axis: only environments with a
//!   non-flat temporal profile react to it.

#![forbid(unsafe_code)]

use std::fs::File;

use cloud_sim::environment::Environment;
use cloud_sim::temporal::StartTime;
use meterstick::campaign::{Campaign, CampaignResults};
use meterstick::executor::{Executor, ParallelExecutor, SequentialExecutor};
use meterstick::sink::{CsvSink, NullSink, ProgressSink, TeeSink};
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// Duration (virtual seconds) used by the figure-regeneration binaries.
///
/// The paper uses 60-second iterations; the default here is shorter so every
/// figure regenerates in seconds of wall-clock time. Pass `--full` to any
/// binary to use the paper's 60-second iterations.
pub const QUICK_DURATION_SECS: u64 = 30;

/// Returns the iteration duration to use, honouring a `--full` CLI flag.
#[must_use]
pub fn duration_from_args() -> u64 {
    if std::env::args().any(|a| a == "--full") {
        60
    } else {
        QUICK_DURATION_SECS
    }
}

/// The executor selected by the CLI flags: the thread-based
/// [`ParallelExecutor`] by default, [`SequentialExecutor`] with
/// `--sequential`.
#[must_use]
pub fn executor_from_args() -> Box<dyn Executor> {
    if std::env::args().any(|a| a == "--sequential") {
        Box::new(SequentialExecutor)
    } else {
        Box::new(ParallelExecutor::default())
    }
}

/// Runs a campaign with the executor and streaming sinks selected by the
/// CLI flags (see the crate docs for the flag list).
///
/// # Panics
///
/// Panics with a readable message when the campaign configuration is
/// invalid or `--csv PATH` cannot be created — these binaries have no
/// caller to propagate errors to.
#[must_use]
pub fn run_campaign(campaign: &Campaign) -> CampaignResults {
    run_campaigns(&[campaign])
        .pop()
        .expect("one campaign in, one result set out")
}

/// Runs several campaigns back to back through the *same* CLI-selected
/// sinks, so a `--csv PATH` stream holds every campaign's rows under a
/// single header. Used by probes that pair a stationary pass with a
/// temporal one.
///
/// # Panics
///
/// Panics with a readable message when a campaign configuration is invalid
/// or `--csv PATH` cannot be created — these binaries have no caller to
/// propagate errors to.
#[must_use]
pub fn run_campaigns(campaigns: &[&Campaign]) -> Vec<CampaignResults> {
    let executor = executor_from_args();
    let mut progress = std::env::args()
        .any(|a| a == "--progress")
        .then(|| ProgressSink::new(std::io::stderr()));
    let mut csv = csv_path_from_args().map(|path| {
        let file = File::create(&path)
            .unwrap_or_else(|err| panic!("cannot create --csv file {path:?}: {err}"));
        CsvSink::new(file)
    });

    let mut all = Vec::with_capacity(campaigns.len());
    for campaign in campaigns {
        let result = match (&mut progress, &mut csv) {
            (Some(progress), Some(csv)) => {
                let mut tee = TeeSink::new(progress, csv);
                campaign.run_with(&*executor, &mut tee)
            }
            (Some(progress), None) => campaign.run_with(&*executor, progress),
            (None, Some(csv)) => campaign.run_with(&*executor, csv),
            (None, None) => campaign.run_with(&*executor, &mut NullSink),
        };
        all.push(result.unwrap_or_else(|err| panic!("campaign failed: {err}")));
    }
    if let Some(err) = csv.as_ref().and_then(CsvSink::error) {
        eprintln!("warning: --csv stream failed mid-run, the CSV file is truncated: {err}");
    }
    all
}

fn csv_path_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--csv" {
            // A missing or flag-like value is a mistyped invocation; fail
            // before the (potentially long) campaign runs rather than
            // silently producing no CSV.
            let path = args.next().filter(|p| !p.starts_with("--"));
            return Some(path.unwrap_or_else(|| panic!("--csv requires a file path argument")));
        }
    }
    None
}

/// The tick-pipeline worker thread count selected by `--tick-threads N`
/// (default 1, the sequential reference path).
///
/// # Panics
///
/// Panics when the flag is present without a valid number.
#[must_use]
pub fn tick_threads_from_args() -> u32 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--tick-threads" {
            let value = args.next().and_then(|v| v.parse().ok());
            return value.unwrap_or_else(|| panic!("--tick-threads requires a thread count"));
        }
    }
    1
}

/// The simulated-week start times selected by `--start-time LIST`
/// (comma-separated `day-hh:mm` labels like `fri-20:30`, or plain integer
/// minutes since Monday 00:00). Defaults to `[StartTime::MONDAY_MIDNIGHT]`
/// when the flag is absent.
///
/// # Panics
///
/// Panics when the flag is present without a parsable value.
#[must_use]
pub fn start_times_from_args() -> Vec<StartTime> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--start-time" {
            let raw = args
                .next()
                .filter(|v| !v.starts_with("--"))
                .unwrap_or_else(|| {
                    panic!("--start-time requires a comma-separated list like fri-20:30,mon-04:00")
                });
            return raw
                .split(',')
                .map(|item| {
                    let item = item.trim();
                    StartTime::parse(item)
                        .or_else(|| item.parse::<u32>().ok().map(StartTime::from_minutes))
                        .unwrap_or_else(|| {
                            panic!(
                                "--start-time: cannot parse {item:?} \
                                 (expected day-hh:mm like fri-20:30, or minutes)"
                            )
                        })
                })
                .collect();
        }
    }
    vec![StartTime::MONDAY_MIDNIGHT]
}

/// Runs one workload for one flavor set in one environment and returns the
/// results. Seeds are fixed so figures are reproducible run-to-run.
#[must_use]
pub fn run(
    workload: WorkloadKind,
    flavors: &[ServerFlavor],
    environment: Environment,
    duration_secs: u64,
    iterations: u32,
) -> CampaignResults {
    let campaign = Campaign::new()
        .workloads([workload])
        .flavors(flavors.iter().copied())
        .environments([environment])
        .tick_threads([tick_threads_from_args()])
        .start_times(start_times_from_args())
        .duration_secs(duration_secs)
        .iterations(iterations);
    run_campaign(&campaign)
}

/// The three standard environments of the paper's Figure 8: AWS 2-core,
/// DAS-5 2-core and DAS-5 16-core.
#[must_use]
pub fn figure8_environments() -> Vec<Environment> {
    vec![
        Environment::aws_default(),
        Environment::das5(2),
        Environment::das5(16),
    ]
}

/// Prints a section header for a figure/table binary.
pub fn print_header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("(reproduction; shapes comparable to the paper, absolute numbers");
    println!(" depend on the simulated substrate — see EXPERIMENTS.md)");
    println!("==============================================================");
}
