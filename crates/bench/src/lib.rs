//! Shared helpers for the Meterstick benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index); the helpers here keep their
//! output format consistent and their run times reasonable.

use cloud_sim::environment::Environment;
use meterstick::config::BenchmarkConfig;
use meterstick::experiment::ExperimentRunner;
use meterstick::results::ExperimentResults;
use meterstick_workloads::WorkloadKind;
use mlg_server::ServerFlavor;

/// Duration (virtual seconds) used by the figure-regeneration binaries.
///
/// The paper uses 60-second iterations; the default here is shorter so every
/// figure regenerates in seconds of wall-clock time. Pass `--full` to any
/// binary to use the paper's 60-second iterations.
pub const QUICK_DURATION_SECS: u64 = 30;

/// Returns the iteration duration to use, honouring a `--full` CLI flag.
#[must_use]
pub fn duration_from_args() -> u64 {
    if std::env::args().any(|a| a == "--full") {
        60
    } else {
        QUICK_DURATION_SECS
    }
}

/// Runs one workload for one flavor set in one environment and returns the
/// results. Seeds are fixed so figures are reproducible run-to-run.
#[must_use]
pub fn run(
    workload: WorkloadKind,
    flavors: &[ServerFlavor],
    environment: Environment,
    duration_secs: u64,
    iterations: u32,
) -> ExperimentResults {
    let config = BenchmarkConfig::new(workload)
        .with_flavors(flavors.to_vec())
        .with_environment(environment)
        .with_duration_secs(duration_secs)
        .with_iterations(iterations);
    ExperimentRunner::new(config).run()
}

/// The three standard environments of the paper's Figure 8: AWS 2-core,
/// DAS-5 2-core and DAS-5 16-core.
#[must_use]
pub fn figure8_environments() -> Vec<Environment> {
    vec![
        Environment::aws_default(),
        Environment::das5(2),
        Environment::das5(16),
    ]
}

/// Prints a section header for a figure/table binary.
pub fn print_header(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("(reproduction; shapes comparable to the paper, absolute numbers");
    println!(" depend on the simulated substrate — see EXPERIMENTS.md)");
    println!("==============================================================");
}
