//! Criterion micro-benchmarks of the metric and protocol layers: ISR
//! computation over long traces, percentile summaries, packet encoding and
//! decoding, and traffic accounting.

use criterion::{criterion_group, criterion_main, Criterion};

use meterstick_metrics::isr::{instability_ratio, synthetic_outlier_trace, IsrParams};
use meterstick_metrics::stats::Percentiles;
use mlg_entity::{EntityId, Vec3};
use mlg_protocol::codec::{decode_clientbound, encode_clientbound};
use mlg_protocol::{ClientboundPacket, TrafficAccountant};

fn bench_isr(c: &mut Criterion) {
    let trace = synthetic_outlier_trace(72_000, 25, 10.0, 50.0); // one hour of ticks
    c.bench_function("isr_one_hour_trace", |b| {
        b.iter(|| instability_ratio(&trace, IsrParams::default()));
    });
    c.bench_function("percentiles_one_hour_trace", |b| {
        b.iter(|| Percentiles::of(&trace));
    });
}

fn bench_protocol(c: &mut Criterion) {
    let packet = ClientboundPacket::EntityMove {
        id: EntityId(123_456),
        pos: Vec3::new(104.25, 64.0, -33.5),
    };
    c.bench_function("encode_entity_move", |b| {
        b.iter(|| encode_clientbound(&packet));
    });
    let encoded = encode_clientbound(&packet);
    c.bench_function("decode_entity_move", |b| {
        b.iter(|| decode_clientbound(encoded.clone()).unwrap());
    });
    c.bench_function("traffic_accounting_1000_packets", |b| {
        b.iter(|| {
            let mut accountant = TrafficAccountant::new();
            for i in 0..1_000u64 {
                accountant.record(
                    &ClientboundPacket::EntityMove {
                        id: EntityId(i),
                        pos: Vec3::new(i as f64, 64.0, 0.0),
                    },
                    25,
                );
            }
            accountant.into_summary()
        });
    });
}

criterion_group!(benches, bench_isr, bench_protocol);
criterion_main!(benches);
