//! Criterion micro-benchmarks of the simulator's hot paths: one server tick
//! under each workload, terrain-update cascades, pathfinding and explosions.
//!
//! These measure the real wall-clock cost of the reproduction's substrate
//! (not the simulated virtual-time results the figures report).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cloud_sim::environment::Environment;
use meterstick_workloads::{WorkloadKind, WorkloadSpec};
use mlg_bots::PlayerEmulation;
use mlg_entity::pathfinding::find_path;
use mlg_protocol::netsim::LinkConfig;
use mlg_server::{GameServer, ServerConfig, ServerFlavor};
use mlg_world::generation::FlatGenerator;
use mlg_world::sim::explode;
use mlg_world::{Block, BlockKind, BlockPos, World};

fn prepared_server(workload: WorkloadKind) -> (GameServer, PlayerEmulation) {
    let built = WorkloadSpec::new(workload).build(392_114_485);
    let config = ServerConfig::for_flavor(ServerFlavor::Vanilla);
    let mut server = GameServer::new(config, built.world, built.spawn_point);
    let mut emulation = PlayerEmulation::new(
        built.players.bots,
        built.spawn_point,
        built.players.walk_area,
        built.players.moving,
        LinkConfig::datacenter(),
        7,
    );
    emulation.connect_all(&mut server);
    for (kind, pos) in &built.ambient_entities {
        server.spawn_entity(*kind, *pos);
    }
    if let Some(delay) = built.tnt_fuse_delay_ticks {
        server.schedule_tnt_ignition(delay.min(20));
    }
    (server, emulation)
}

fn bench_server_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_tick");
    group.sample_size(20);
    for workload in [WorkloadKind::Control, WorkloadKind::Farm, WorkloadKind::Lag] {
        group.bench_function(format!("{workload}"), |b| {
            let (mut server, mut emulation) = prepared_server(workload);
            let mut engine = Environment::das5(2).instantiate(1).engine;
            // Warm up past the join spike.
            for _ in 0..30 {
                emulation.step(&mut server, &mut engine);
            }
            b.iter(|| emulation.step(&mut server, &mut engine));
        });
    }
    group.finish();
}

fn bench_terrain_cascade(c: &mut Criterion) {
    c.bench_function("terrain_sand_cascade", |b| {
        b.iter_batched(
            || {
                let mut world = World::new(Box::new(FlatGenerator::grassland()), 7);
                for y in 70..90 {
                    world.set_block(BlockPos::new(4, y, 4), Block::simple(BlockKind::Sand));
                }
                world
            },
            |mut world| {
                let sim = mlg_world::TerrainSimulator::new();
                world.advance_tick();
                let (report, _) = sim.tick(&mut world);
                report
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_explosion(c: &mut Criterion) {
    c.bench_function("explosion_radius4", |b| {
        b.iter_batched(
            || World::new(Box::new(FlatGenerator::grassland()), 7),
            |mut world| explode(&mut world, BlockPos::new(8, 60, 8), 4),
            BatchSize::SmallInput,
        );
    });
}

fn bench_pathfinding(c: &mut Criterion) {
    c.bench_function("pathfind_30_blocks", |b| {
        let mut world = World::new(Box::new(FlatGenerator::grassland()), 7);
        // A wall with a gap forces a detour.
        for z in -10..=10 {
            for y in 61..64 {
                if z != 8 {
                    world
                        .set_block_silent(BlockPos::new(15, y, z), Block::simple(BlockKind::Stone));
                }
            }
        }
        b.iter(|| {
            find_path(
                &mut world,
                BlockPos::new(0, 61, 0),
                BlockPos::new(30, 61, 0),
                4_096,
            )
        });
    });
}

/// A terrain scene with cascading activity spanning several shard stripes,
/// for the sequential-vs-sharded tick comparison.
fn sharded_scene() -> World {
    let mut world = World::new(Box::new(FlatGenerator::grassland()), 7);
    world.ensure_area(mlg_world::ChunkPos::new(2, 0), 4);
    for x in [10, 40, 70, 100] {
        for y in 70..80 {
            world.set_block(BlockPos::new(x, y, 8), Block::simple(BlockKind::Sand));
        }
        for dx in 0..3 {
            let tnt = BlockPos::new(x + 6 + dx, 61, 12);
            world.set_block_silent(tnt, Block::simple(BlockKind::Tnt));
            world.schedule_tick(tnt, 1);
        }
    }
    world
}

fn bench_sharded_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick_pipeline");
    group.sample_size(10);
    group.bench_function("terrain_sequential", |b| {
        b.iter_batched(
            sharded_scene,
            |mut world| {
                let sim = mlg_world::TerrainSimulator::new();
                world.advance_tick();
                let (report, _) = sim.tick(&mut world);
                report
            },
            BatchSize::SmallInput,
        );
    });
    for threads in [1u32, 4] {
        group.bench_function(format!("terrain_sharded_4x{threads}"), |b| {
            let pipeline = mlg_world::TickPipeline::new(4, threads);
            b.iter_batched(
                sharded_scene,
                |mut world| {
                    let sim = mlg_world::TerrainSimulator::new();
                    world.advance_tick();
                    sim.tick_sharded(&mut world, &pipeline).report
                },
                BatchSize::SmallInput,
            );
        });
    }
    // Whole-server comparison: the classic serial loop vs the Folia-like
    // sharded pipeline under the TNT workload.
    for (name, flavor, threads) in [
        ("server_tnt_vanilla", ServerFlavor::Vanilla, 1u32),
        ("server_tnt_folia_1thr", ServerFlavor::Folia, 1),
        ("server_tnt_folia_4thr", ServerFlavor::Folia, 4),
    ] {
        group.bench_function(name, |b| {
            let built = WorkloadSpec::new(WorkloadKind::Tnt).build(392_114_485);
            let config = ServerConfig::for_flavor(flavor).with_tick_threads(threads);
            let mut server = GameServer::new(config, built.world, built.spawn_point);
            server.schedule_tnt_ignition(5);
            let mut engine = Environment::das5(4).instantiate(1).engine;
            for _ in 0..30 {
                server.run_tick(&mut engine);
            }
            b.iter(|| server.run_tick(&mut engine));
        });
    }
    group.finish();
}

fn bench_shard_rebalancing(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_rebalance");
    group.sample_size(10);
    // Static stripes vs adaptive quadtree regions on the same hotspot
    // scene (the shared `workloads::tnt::clustered_hotspot_world`, which
    // the integration test pinning the busiest-shard improvement also
    // drives), both through the Folia flavor at 8 worker threads.
    for (name, rebalance) in [
        ("hotspot_tnt_static_stripes", false),
        ("hotspot_tnt_adaptive_regions", true),
    ] {
        group.bench_function(name, |b| {
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(2)
                .with_tick_threads(8)
                .with_shard_rebalance(Some(rebalance));
            let (sx, sy, sz) = meterstick_workloads::tnt::CLUSTERED_HOTSPOT_SPAWN;
            let mut server = GameServer::new(
                config,
                meterstick_workloads::tnt::clustered_hotspot_world(7),
                mlg_entity::Vec3::new(sx, sy, sz),
            );
            server.connect_player("probe");
            server.schedule_tnt_ignition(2);
            let mut engine = Environment::das5(8).instantiate(1).engine;
            // Warm through ignition so the steady state is the cascade.
            for _ in 0..40 {
                server.run_tick(&mut engine);
            }
            b.iter(|| server.run_tick(&mut engine));
        });
    }
    group.finish();
}

/// Substrate wall-clock cost of the stage-parallel tick graph under the
/// player-heavy Crowd workload (220 building bots): the serial reference
/// path vs the worker pool, and the vanilla serial loop for scale. The
/// *modeled* stage-parallel win is pinned by
/// `stage_parallel_graph_beats_serial_player_and_dissemination_stages` in
/// `tests/sharded_determinism.rs`; this group measures what the substrate
/// itself pays for shard batching and the pipelined lighting stage.
fn bench_stage_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_breakdown");
    group.sample_size(10);
    for (name, flavor, threads, eager) in [
        ("crowd_vanilla_serial", ServerFlavor::Vanilla, 1u32, None),
        ("crowd_folia_1thr", ServerFlavor::Folia, 1, None),
        ("crowd_folia_8thr", ServerFlavor::Folia, 8, None),
        (
            "crowd_folia_8thr_eager_light",
            ServerFlavor::Folia,
            8,
            Some(true),
        ),
    ] {
        group.bench_function(name, |b| {
            let built = WorkloadSpec::new(WorkloadKind::Crowd).build(392_114_485);
            let config = ServerConfig::for_flavor(flavor)
                .with_view_distance(2)
                .with_tick_threads(threads)
                .with_eager_lighting(eager);
            let mut server = GameServer::new(config, built.world, built.spawn_point);
            let mut emulation = PlayerEmulation::new(
                built.players.bots,
                built.spawn_point,
                built.players.walk_area,
                built.players.moving,
                LinkConfig::datacenter(),
                7,
            )
            .with_builders();
            emulation.connect_all(&mut server);
            let mut engine = Environment::das5(8).instantiate(1).engine;
            for _ in 0..30 {
                emulation.step(&mut server, &mut engine);
            }
            b.iter(|| emulation.step(&mut server, &mut engine));
        });
    }
    group.finish();
}

/// Substrate cost of the persistent tick worker pool vs the per-phase
/// scoped-thread fallback: same server, same workload, same thread count,
/// bit-identical results (pinned by `pool_reuse_is_bit_identical` in
/// `tests/sharded_determinism.rs`) — the only difference is whether the
/// parallel phases dispatch onto long-lived parked workers or spawn and
/// join fresh OS threads every phase of every tick. The delta is pure
/// runtime-environment overhead in the Reichelt et al. sense; current
/// numbers are recorded in `docs/ARCHITECTURE.md`'s performance notes.
fn bench_worker_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_pool");
    group.sample_size(10);
    // Crowd: 220 clustered building bots — the sharded player handler and
    // dissemination dominate, with several pool dispatches per tick.
    for (name, pooled) in [
        ("crowd_8thr_persistent_pool", true),
        ("crowd_8thr_fresh_scopes", false),
    ] {
        group.bench_function(name, |b| {
            let built = WorkloadSpec::new(WorkloadKind::Crowd).build(392_114_485);
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(2)
                .with_tick_threads(8);
            let mut server = GameServer::new(config, built.world, built.spawn_point);
            server.set_worker_pool_enabled(pooled);
            let mut emulation = PlayerEmulation::new(
                built.players.bots,
                built.spawn_point,
                built.players.walk_area,
                built.players.moving,
                LinkConfig::datacenter(),
                7,
            )
            .with_builders();
            emulation.connect_all(&mut server);
            let mut engine = Environment::das5(8).instantiate(1).engine;
            for _ in 0..30 {
                emulation.step(&mut server, &mut engine);
            }
            b.iter(|| emulation.step(&mut server, &mut engine));
        });
    }
    // Clustered TNT hotspot: terrain cascade rounds are the pool's worst
    // case — every cascade round is a separate dispatch, so a tick can pay
    // the substrate cost a dozen times over.
    for (name, pooled) in [
        ("hotspot_tnt_8thr_persistent_pool", true),
        ("hotspot_tnt_8thr_fresh_scopes", false),
    ] {
        group.bench_function(name, |b| {
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(2)
                .with_tick_threads(8)
                .with_shard_rebalance(Some(true));
            let (sx, sy, sz) = meterstick_workloads::tnt::CLUSTERED_HOTSPOT_SPAWN;
            let mut server = GameServer::new(
                config,
                meterstick_workloads::tnt::clustered_hotspot_world(7),
                mlg_entity::Vec3::new(sx, sy, sz),
            );
            server.set_worker_pool_enabled(pooled);
            server.connect_player("probe");
            server.schedule_tnt_ignition(2);
            let mut engine = Environment::das5(8).instantiate(1).engine;
            for _ in 0..40 {
                server.run_tick(&mut engine);
            }
            b.iter(|| server.run_tick(&mut engine));
        });
    }
    group.finish();
}

/// Wall-clock noise floor: the empty Control-workload tick, registered
/// three times so the report shows the spread between identical
/// measurements. Substrate wins smaller than this spread are noise —
/// the `noise_floor` binary prints the same calibration standalone.
fn bench_noise_floor(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_floor");
    group.sample_size(30);
    for run in ["a", "b", "c"] {
        group.bench_function(format!("empty_tick_{run}"), |b| {
            let built = WorkloadSpec::new(WorkloadKind::Control).build(392_114_485);
            let config = ServerConfig::for_flavor(ServerFlavor::Vanilla);
            let mut server = GameServer::new(config, built.world, built.spawn_point);
            let mut engine = Environment::das5(2).instantiate(1).engine;
            for _ in 0..30 {
                server.run_tick(&mut engine);
            }
            b.iter(|| server.run_tick(&mut engine));
        });
    }
    group.finish();
}

/// A dense `Vec<Block>` chunk body — the storage layout the palette store
/// replaced — kept here as the bench-only baseline for the comparison.
struct DenseChunk {
    blocks: Vec<Block>,
}

impl DenseChunk {
    const BODY: usize = 16 * 16 * 128;

    fn new() -> Self {
        DenseChunk {
            blocks: vec![Block::AIR; Self::BODY],
        }
    }

    fn index(x: usize, y: usize, z: usize) -> usize {
        (y * 16 + z) * 16 + x
    }

    fn set(&mut self, x: usize, y: usize, z: usize, block: Block) {
        self.blocks[Self::index(x, y, z)] = block;
    }

    fn get(&self, x: usize, y: usize, z: usize) -> Block {
        self.blocks[Self::index(x, y, z)]
    }
}

/// Writes a generated-style terrain column profile (bedrock, stone, dirt,
/// grass) through whichever setter the caller provides.
fn fill_terrain(mut set: impl FnMut(usize, usize, usize, Block)) {
    for x in 0..16 {
        for z in 0..16 {
            set(x, 0, z, Block::simple(BlockKind::Bedrock));
            for y in 1..60 {
                set(x, y, z, Block::simple(BlockKind::Stone));
            }
            for y in 60..63 {
                set(x, y, z, Block::simple(BlockKind::Dirt));
            }
            set(x, 63, z, Block::simple(BlockKind::Grass));
        }
    }
}

/// Dense-vs-palette chunk body: full-terrain writes, full-volume reads and
/// chunk snapshots (clones), the three access patterns the tick pipeline
/// actually performs.
fn bench_chunk_storage(c: &mut Criterion) {
    use mlg_world::{Chunk, ChunkPos};

    let mut group = c.benchmark_group("chunk_storage");
    group.bench_function("dense_set", |b| {
        b.iter_batched(
            DenseChunk::new,
            |mut chunk| {
                fill_terrain(|x, y, z, block| chunk.set(x, y, z, block));
                chunk
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("palette_set", |b| {
        b.iter_batched(
            || Chunk::empty(ChunkPos::new(0, 0)),
            |mut chunk| {
                fill_terrain(|x, y, z, block| {
                    chunk.set_block(x, y as i32, z, block);
                });
                chunk
            },
            BatchSize::SmallInput,
        );
    });
    // Same terrain through the bulk column-fill path generators use; the
    // gap between this and `palette_set` is the recovered write-path cost.
    group.bench_function("palette_fill_column", |b| {
        b.iter_batched(
            || Chunk::empty(ChunkPos::new(0, 0)),
            |mut chunk| {
                for x in 0..16 {
                    for z in 0..16 {
                        chunk.fill_column(x, z, 0, 0, Block::simple(BlockKind::Bedrock));
                        chunk.fill_column(x, z, 1, 59, Block::simple(BlockKind::Stone));
                        chunk.fill_column(x, z, 60, 62, Block::simple(BlockKind::Dirt));
                        chunk.fill_column(x, z, 63, 63, Block::simple(BlockKind::Grass));
                    }
                }
                chunk
            },
            BatchSize::SmallInput,
        );
    });

    let mut dense = DenseChunk::new();
    fill_terrain(|x, y, z, block| dense.set(x, y, z, block));
    let mut palette = Chunk::empty(ChunkPos::new(0, 0));
    fill_terrain(|x, y, z, block| {
        palette.set_block(x, y as i32, z, block);
    });
    palette.compact_storage();

    group.bench_function("dense_get", |b| {
        b.iter(|| {
            let mut non_air = 0u32;
            for y in 0..128 {
                for z in 0..16 {
                    for x in 0..16 {
                        non_air += u32::from(!dense.get(x, y, z).is_air());
                    }
                }
            }
            non_air
        });
    });
    group.bench_function("palette_get", |b| {
        b.iter(|| {
            let mut non_air = 0u32;
            for y in 0..128 {
                for z in 0..16 {
                    for x in 0..16 {
                        non_air += u32::from(!palette.block(x, y, z).is_air());
                    }
                }
            }
            non_air
        });
    });
    group.bench_function("dense_snapshot", |b| {
        b.iter(|| dense.blocks.clone());
    });
    group.bench_function("palette_snapshot", |b| {
        b.iter(|| palette.clone());
    });
    group.finish();
}

/// Scaled-population substrate costs: per-tick entity cost must grow
/// ~linearly in the live population (compare the `manager_tick_*` rows:
/// doubling the population should roughly double the time, not quadruple
/// it), despawn churn must not be quadratic (the `despawn_churn_*` rows
/// scale with the removals, not removals × population — the SoA store
/// removes in O(log n)), and area-of-interest dissemination must beat the
/// full broadcast on a scattered swarm (`horde_step_*`). Wins smaller than
/// the `noise_floor` group's spread are noise; the group prints the
/// modeled dissemination-byte cut up front because that ratio — unlike
/// wall time — is exact and noise-free. Current numbers are recorded in
/// `docs/ARCHITECTURE.md`'s performance notes.
fn bench_entity_scaling(c: &mut Criterion) {
    use mlg_entity::{EntityId, EntityKind, EntityManager, Vec3};

    // The modeled byte cut on the full-scale Horde (5,000 scattered
    // builder bots): tick-phase dissemination bytes with area-of-interest
    // sets vs the full broadcast, measured over the same three ticks of
    // the identical simulation. Deterministic, so any ratio below 5x is a
    // regression, not noise.
    let tick_bytes = |aoi: bool| -> u64 {
        let built = WorkloadSpec::new(WorkloadKind::Horde).build(392_114_485);
        let config = ServerConfig::for_flavor(ServerFlavor::Folia)
            .with_view_distance(2)
            .with_aoi_dissemination(Some(aoi));
        let mut emulation = PlayerEmulation::new(
            built.players.bots,
            built.spawn_point,
            built.players.walk_area,
            built.players.moving,
            LinkConfig::datacenter(),
            7,
        )
        .with_builders()
        .scattered(built.spawn_point, built.players.scatter, 7);
        let mut server = GameServer::new(config, built.world, built.spawn_point);
        emulation.connect_all(&mut server);
        let joined = server.traffic_summary().total_bytes();
        let mut engine = Environment::das5(4).instantiate(1).engine;
        for _ in 0..3 {
            emulation.step(&mut server, &mut engine);
        }
        server.traffic_summary().total_bytes() - joined
    };
    let aoi_bytes = tick_bytes(true);
    let broadcast_bytes = tick_bytes(false);
    println!(
        "entity_scaling: Horde dissemination {broadcast_bytes} B broadcast vs {aoi_bytes} B \
         with AoI sets = {:.1}x cut (threshold 5x; exact model counts, no noise floor applies)",
        broadcast_bytes as f64 / aoi_bytes.max(1) as f64
    );

    let populated = |n: usize| -> (EntityManager, World, Vec<EntityId>) {
        let world = World::new(Box::new(FlatGenerator::grassland()), 7);
        let mut manager = EntityManager::new(7);
        manager.natural_spawning = false;
        let mut s = 0x5EED_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let ids = (0..n)
            .map(|_| {
                let pos = Vec3::new(
                    (next() % 384) as f64 - 192.0,
                    62.0,
                    (next() % 384) as f64 - 192.0,
                );
                manager.spawn(EntityKind::Cow, pos)
            })
            .collect();
        (manager, world, ids)
    };

    let mut group = c.benchmark_group("entity_scaling");
    group.sample_size(10);
    for n in [1_000usize, 2_000, 4_000] {
        group.bench_function(format!("manager_tick_{n}_mobs"), |b| {
            let (mut manager, mut world, _) = populated(n);
            // Settle physics (and lazy chunk generation) out of the
            // measurement.
            for _ in 0..5 {
                manager.tick(&mut world, &[Vec3::ZERO]);
            }
            b.iter(|| manager.tick(&mut world, &[Vec3::ZERO]));
        });
    }
    // Despawn-heavy churn: remove the entire population one id at a time.
    // Under the old dense-Vec storage each removal shifted the tail, so
    // this whole row was quadratic in the population.
    for n in [1_000usize, 4_000] {
        group.bench_function(format!("despawn_churn_{n}"), |b| {
            b.iter_batched(
                || populated(n),
                |(mut manager, _world, ids)| {
                    for id in ids {
                        manager.remove(id);
                    }
                    manager
                },
                BatchSize::SmallInput,
            );
        });
    }
    // Wall-clock side of the dissemination cut, at a swarm scale where the
    // broadcast variant is still benchable.
    for (name, aoi) in [
        ("horde_step_aoi_sets", true),
        ("horde_step_broadcast", false),
    ] {
        group.bench_function(name, |b| {
            let built = WorkloadSpec::new(WorkloadKind::Horde).build(392_114_485);
            let config = ServerConfig::for_flavor(ServerFlavor::Folia)
                .with_view_distance(2)
                .with_aoi_dissemination(Some(aoi));
            let mut emulation = PlayerEmulation::new(
                1_500,
                built.spawn_point,
                built.players.walk_area,
                built.players.moving,
                LinkConfig::datacenter(),
                7,
            )
            .with_builders()
            .scattered(built.spawn_point, built.players.scatter, 7);
            let mut server = GameServer::new(config, built.world, built.spawn_point);
            emulation.connect_all(&mut server);
            let mut engine = Environment::das5(8).instantiate(1).engine;
            for _ in 0..10 {
                emulation.step(&mut server, &mut engine);
            }
            b.iter(|| emulation.step(&mut server, &mut engine));
        });
    }
    group.finish();
}

fn bench_player_emulation(c: &mut Criterion) {
    c.bench_function("players_workload_tick_25_bots", |b| {
        let (mut server, mut emulation) = prepared_server(WorkloadKind::Players);
        let mut engine = Environment::das5(2).instantiate(1).engine;
        for _ in 0..30 {
            emulation.step(&mut server, &mut engine);
        }
        b.iter(|| emulation.step(&mut server, &mut engine));
    });
}

criterion_group!(
    benches,
    bench_server_ticks,
    bench_terrain_cascade,
    bench_explosion,
    bench_pathfinding,
    bench_sharded_tick,
    bench_shard_rebalancing,
    bench_stage_breakdown,
    bench_worker_pool,
    bench_noise_floor,
    bench_chunk_storage,
    bench_entity_scaling,
    bench_player_emulation
);
criterion_main!(benches);
