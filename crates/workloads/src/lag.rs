//! The Lag workload: a lag machine.
//!
//! "Lag Machines are a specific subset of simulated constructs that are
//! designed to cause high computational load for the MLG […] it uses many
//! logic-gate constructs in a small area to cause a high volume of simulation
//! rule activations." (Section 3.3.1.) The paper further notes the machine
//! "consists mainly of parts which are only simulated every other tick,
//! causing the game to alternate between extremely short and extremely long
//! ticks", which is what maximizes ISR.
//!
//! The reproduction builds a dense grid of period-2 clocks, each driving a
//! cross of redstone dust, packed into a small area next to spawn. Every
//! other tick all clocks toggle simultaneously, flooding the update queue
//! with dust recomputations and the lighting engine with block-state changes.

use mlg_entity::Vec3;
use mlg_world::generation::FlatGenerator;
use mlg_world::{Block, BlockKind, BlockPos, ChunkPos, World};

use crate::spec::{BuiltWorkload, PlayerWorkload, WorkloadKind};

/// Number of clock cells along one edge of the machine at scale 1.
pub const GRID_EDGE: u32 = 8;

/// Length of each dust arm attached to a clock cell.
pub const DUST_ARM_LENGTH: i32 = 2;

/// Clock period in game ticks: every other tick, per the paper's analysis.
pub const CLOCK_PERIOD: u8 = 2;

/// Builds one clock cell: a period-2 clock with four dust arms.
fn build_clock_cell(world: &mut World, center: BlockPos) {
    world.set_block_silent(
        center,
        Block::with_state(BlockKind::Comparator, CLOCK_PERIOD),
    );
    for (dx, dz) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
        for step in 1..=DUST_ARM_LENGTH {
            world.set_block_silent(
                center.offset(dx * step, 0, dz * step),
                Block::simple(BlockKind::RedstoneDust),
            );
        }
    }
    world.schedule_tick(center, 1);
}

/// Builds the Lag world. `scale` multiplies the number of clock cells.
#[must_use]
pub fn build(seed: u64, scale: u32) -> BuiltWorkload {
    let generator = FlatGenerator::grassland();
    let surface = generator.surface_y();
    let mut world = World::new(Box::new(generator), seed);
    world.ensure_area(ChunkPos::new(0, 0), 4);
    let y = surface + 1;

    // The machine sits in a compact square starting a few blocks from spawn,
    // cells spaced far enough apart that their dust arms do not touch.
    let spacing = 2 * DUST_ARM_LENGTH + 2;
    let edge = GRID_EDGE * scale;
    let mut cells = 0u32;
    for ix in 0..edge {
        for iz in 0..GRID_EDGE {
            let center = BlockPos::new(
                8 + (ix as i32) * spacing,
                y,
                -((GRID_EDGE as i32 * spacing) / 2) + (iz as i32) * spacing,
            );
            build_clock_cell(&mut world, center);
            cells += 1;
        }
    }

    let spawn_point = Vec3::new(0.5, f64::from(y), 0.5);
    BuiltWorkload {
        kind: WorkloadKind::Lag,
        world,
        spawn_point,
        players: PlayerWorkload::single_observer(),
        tnt_fuse_delay_ticks: None,
        ambient_entities: Vec::new(),
        description: format!(
            "lag machine: {cells} period-{CLOCK_PERIOD} clocks with {DUST_ARM_LENGTH}-block dust arms"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_has_the_expected_component_counts() {
        let built = build(1, 1);
        let clocks = built.world.count_kind(BlockKind::Comparator);
        let dust = built.world.count_kind(BlockKind::RedstoneDust);
        assert_eq!(clocks, (GRID_EDGE * GRID_EDGE) as usize);
        assert_eq!(dust, clocks * (4 * DUST_ARM_LENGTH) as usize);
    }

    #[test]
    fn every_clock_is_armed() {
        let built = build(1, 1);
        assert_eq!(
            built.world.updates().scheduled_len(),
            (GRID_EDGE * GRID_EDGE) as usize
        );
    }

    #[test]
    fn scale_multiplies_the_machine() {
        let one = build(1, 1).world.count_kind(BlockKind::Comparator);
        let two = build(1, 2).world.count_kind(BlockKind::Comparator);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn clock_period_is_every_other_tick() {
        assert_eq!(CLOCK_PERIOD, 2);
        let mut built = build(1, 1);
        // The clock block itself stores its period in the low state nibble.
        let spacing = 2 * DUST_ARM_LENGTH + 2;
        let clock_pos = BlockPos::new(8, 61, -((GRID_EDGE as i32 * spacing) / 2));
        assert_eq!(built.world.block(clock_pos).kind(), BlockKind::Comparator);
        assert_eq!(built.world.block(clock_pos).state() & 0x0F, CLOCK_PERIOD);
    }
}
