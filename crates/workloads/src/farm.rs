//! The Farm workload: popular community resource-farm constructs.
//!
//! Table 3 of the paper lists the constructs placed in the Farm world: 12
//! entity farms, 4 stone farms, 4 kelp farms and 1 item sorter, sourced from
//! popular community creators. The original world downloads cannot be
//! redistributed, so this module rebuilds functionally equivalent constructs
//! from the simulation primitives this repository implements:
//!
//! * **entity farm** — a roofed, dark spawning platform near the player;
//!   hostile mobs spawn there and exercise spawning, AI and pathfinding;
//! * **stone farm** — a clock-driven dispenser that periodically ejects
//!   cobblestone item entities next to a hopper (periodic activation roughly
//!   every 0.75 s; the paper's farms activate every ~4 s but with an order of
//!   magnitude more moving parts each);
//! * **kelp farm** — kelp growing in a water basin, harvested by a
//!   clock-driven piston, with hoppers collecting the drops;
//! * **item sorter** — a hopper/chest line with a repeater chain that item
//!   entities are funnelled through.

use mlg_entity::Vec3;
use mlg_world::generation::FlatGenerator;
use mlg_world::{Block, BlockKind, BlockPos, ChunkPos, World};

use crate::spec::{BuiltWorkload, PlayerWorkload, WorkloadKind};

/// Number of entity farms at scale 1 (Table 3).
pub const ENTITY_FARMS: u32 = 12;
/// Number of stone farms at scale 1 (Table 3).
pub const STONE_FARMS: u32 = 4;
/// Number of kelp farms at scale 1 (Table 3).
pub const KELP_FARMS: u32 = 4;
/// Number of item sorters at scale 1 (Table 3).
pub const ITEM_SORTERS: u32 = 1;

/// Clock period (in game ticks) used by the farm activation clocks.
const FARM_CLOCK_PERIOD: u8 = 15;

/// Length of the redstone bus that distributes each farm's activation pulse
/// to its moving parts. The bus is what turns an activation into a burst of
/// block updates and relighting, mirroring how the paper's farm constructs
/// produce periodic load spikes.
const FARM_BUS_LENGTH: i32 = 24;

fn place(world: &mut World, pos: BlockPos, kind: BlockKind) {
    world.set_block_silent(pos, Block::simple(kind));
}

fn place_state(world: &mut World, pos: BlockPos, kind: BlockKind, state: u8) {
    world.set_block_silent(pos, Block::with_state(kind, state));
}

/// Builds one roofed dark platform where hostile mobs can spawn.
fn build_entity_farm(world: &mut World, origin: BlockPos) {
    let size = 9;
    for dx in 0..size {
        for dz in 0..size {
            // Solid floor one block above the terrain surface keeps the farm
            // isolated from terrain changes.
            place(world, origin.offset(dx, 0, dz), BlockKind::Stone);
            // Roof three blocks above the floor blocks all sky light.
            place(world, origin.offset(dx, 3, dz), BlockKind::Stone);
        }
    }
    // Collection hoppers along one edge of the platform.
    for dz in 0..size {
        place(world, origin.offset(0, 1, dz), BlockKind::Hopper);
    }
}

/// Builds one clock-driven dispenser "stone farm".
fn build_stone_farm(world: &mut World, origin: BlockPos) {
    let clock = origin;
    place_state(world, clock, BlockKind::Comparator, FARM_CLOCK_PERIOD);
    place(world, clock.offset(1, 0, 0), BlockKind::RedstoneDust);
    place(world, clock.offset(2, 0, 0), BlockKind::Dispenser);
    place(world, clock.offset(2, 0, 1), BlockKind::Hopper);
    place(world, clock.offset(2, 0, -1), BlockKind::Chest);
    // The activation bus that feeds the farm's moving parts.
    for k in 1..=FARM_BUS_LENGTH {
        place(world, clock.offset(-k, 0, 0), BlockKind::RedstoneDust);
    }
    // A decorative lava/water corner so the construct also owns fluid state.
    place(world, clock.offset(0, 0, 3), BlockKind::Lava);
    place(world, clock.offset(2, 0, 3), BlockKind::Water);
    world.schedule_tick(clock, 1);
}

/// Builds one kelp farm: a water basin with kelp, a harvesting piston driven
/// by a clock, and a hopper floor.
fn build_kelp_farm(world: &mut World, origin: BlockPos) {
    // Basin walls (3 wide, 4 tall) filled with water.
    for dy in 0..4 {
        for dx in -1..=1 {
            for dz in -1..=1 {
                let pos = origin.offset(dx, dy, dz);
                if dx.abs() == 1 || dz.abs() == 1 {
                    place(world, pos, BlockKind::Glass);
                } else {
                    place(world, pos, BlockKind::Water);
                }
            }
        }
    }
    // Hopper below the kelp column, kelp planted inside the water.
    place(world, origin.offset(0, -1, 0), BlockKind::Hopper);
    place(world, origin, BlockKind::Kelp);
    // Harvesting piston at the height kelp grows into, driven by a clock.
    let piston = origin.offset(1, 1, 0);
    place(world, piston, BlockKind::Piston);
    let clock = origin.offset(2, 1, 0);
    place_state(world, clock, BlockKind::Comparator, FARM_CLOCK_PERIOD);
    // The activation bus that feeds the farm's moving parts.
    for k in 1..=FARM_BUS_LENGTH {
        place(world, clock.offset(k, 0, 0), BlockKind::RedstoneDust);
    }
    // Kelp farms activate on the off-beat relative to stone farms.
    world.schedule_tick(clock, 8);
}

/// Builds the item sorter: a hopper line with chests and a repeater chain,
/// fed by a clock-driven dispenser.
fn build_item_sorter(world: &mut World, origin: BlockPos) {
    let length = 8;
    for i in 0..length {
        place(world, origin.offset(i, 0, 0), BlockKind::Hopper);
        place(world, origin.offset(i, -1, 0), BlockKind::Chest);
        place(world, origin.offset(i, 0, 1), BlockKind::Repeater);
        place(world, origin.offset(i, 0, 2), BlockKind::RedstoneDust);
    }
    let dispenser = origin.offset(-1, 1, 0);
    place(world, dispenser, BlockKind::Dispenser);
    let clock = origin.offset(-2, 1, 0);
    place_state(world, clock, BlockKind::Comparator, FARM_CLOCK_PERIOD);
    world.schedule_tick(clock, 1);
}

/// Builds the Farm world. `scale` multiplies the number of each construct.
#[must_use]
pub fn build(seed: u64, scale: u32) -> BuiltWorkload {
    let generator = FlatGenerator::grassland();
    let surface = generator.surface_y();
    let mut world = World::new(Box::new(generator), seed);
    world.ensure_area(ChunkPos::new(0, 0), 4);
    let base_y = surface + 1;

    let mut constructs = 0u32;
    // Entity farms in a ring around spawn, close enough for the spawner's
    // per-player radius to cover them.
    for i in 0..ENTITY_FARMS * scale {
        let angle = f64::from(i) / f64::from(ENTITY_FARMS * scale) * std::f64::consts::TAU;
        let cx = (angle.cos() * 26.0).round() as i32;
        let cz = (angle.sin() * 26.0).round() as i32;
        build_entity_farm(&mut world, BlockPos::new(cx, base_y, cz));
        constructs += 1;
    }
    // Stone farms west of spawn.
    for i in 0..STONE_FARMS * scale {
        build_stone_farm(&mut world, BlockPos::new(-14, base_y, -10 + 6 * i as i32));
        constructs += 1;
    }
    // Kelp farms east of spawn.
    for i in 0..KELP_FARMS * scale {
        build_kelp_farm(&mut world, BlockPos::new(14, base_y, -10 + 6 * i as i32));
        constructs += 1;
    }
    // Item sorter(s) north of spawn.
    for i in 0..ITEM_SORTERS * scale {
        build_item_sorter(&mut world, BlockPos::new(-4, base_y, 16 + 4 * i as i32));
        constructs += 1;
    }

    let spawn_point = Vec3::new(0.5, f64::from(base_y), 0.5);
    // Farm worlds keep a handful of villagers around their constructs.
    let ambient_entities = (0..6)
        .map(|i| {
            (
                mlg_entity::EntityKind::Villager,
                Vec3::new(4.0 + f64::from(i) * 2.0, f64::from(base_y), 6.5),
            )
        })
        .collect();
    BuiltWorkload {
        kind: WorkloadKind::Farm,
        world,
        spawn_point,
        players: PlayerWorkload::single_observer(),
        tnt_fuse_delay_ticks: None,
        ambient_entities,
        description: format!(
            "{constructs} resource-farm constructs ({} entity, {} stone, {} kelp, {} sorter)",
            ENTITY_FARMS * scale,
            STONE_FARMS * scale,
            KELP_FARMS * scale,
            ITEM_SORTERS * scale
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_world_contains_the_table3_constructs() {
        let built = build(1, 1);
        // Hoppers appear in every construct type (a few may be overwritten
        // where construct footprints touch, which real community worlds also
        // tolerate).
        assert!(built.world.count_kind(BlockKind::Hopper) >= 110);
        // One activation clock per stone farm, kelp farm and sorter.
        assert_eq!(
            built.world.count_kind(BlockKind::Comparator),
            (STONE_FARMS + KELP_FARMS + ITEM_SORTERS) as usize
        );
        assert_eq!(built.world.count_kind(BlockKind::Kelp), KELP_FARMS as usize);
        assert!(built.world.count_kind(BlockKind::Piston) >= KELP_FARMS as usize);
    }

    #[test]
    fn clocks_are_armed() {
        let built = build(1, 1);
        assert!(
            built.world.updates().scheduled_len()
                >= (STONE_FARMS + KELP_FARMS + ITEM_SORTERS) as usize,
            "every clock must have a pending scheduled tick"
        );
    }

    #[test]
    fn entity_farms_are_dark_inside() {
        let mut built = build(1, 1);
        // Check one platform interior: roof above, floor below, darkness.
        let interior = BlockPos::new(26 + 3, 62, 3);
        let light = mlg_world::light::sky_light_at(&mut built.world, interior);
        // Interior points under the roof must be dark enough for spawning.
        assert!(
            light <= 2,
            "entity farm interior should be dark, light={light}"
        );
    }

    #[test]
    fn scale_multiplies_construct_count() {
        let one = build(1, 1).world.count_kind(BlockKind::Comparator);
        let two = build(1, 2).world.count_kind(BlockKind::Comparator);
        assert_eq!(two, one * 2);
    }
}
