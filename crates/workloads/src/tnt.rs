//! The TNT workload: a cuboid of TNT detonated shortly after a player joins.
//!
//! "The TNT world contains a 16-by-16-by-14 cuboid filled with TNT blocks
//! which are set to explode around 20 seconds after a player connects. […]
//! when a large section of TNT is activated, the MLG must perform a large
//! number of both entity-collision and physics calculations."
//! (Section 3.3.1.)

use mlg_entity::Vec3;
use mlg_world::generation::FlatGenerator;
use mlg_world::{Block, BlockKind, BlockPos, ChunkPos, Region, World};

use crate::spec::{BuiltWorkload, PlayerWorkload, WorkloadKind};

/// Ticks between experiment start and TNT ignition (~20 seconds at 20 Hz).
pub const FUSE_DELAY_TICKS: u64 = 400;

/// Base dimensions of the TNT cuboid (x, y, z) at scale 1, matching Table 2.
pub const CUBOID_DIMENSIONS: (u32, u32, u32) = (16, 14, 16);

/// Distance between the spawn point and the nearest cuboid face, in blocks.
const STANDOFF: i32 = 24;

/// Builds the TNT world. `scale` multiplies the cuboid's horizontal footprint.
#[must_use]
pub fn build(seed: u64, scale: u32) -> BuiltWorkload {
    let generator = FlatGenerator::grassland();
    let surface = generator.surface_y();
    let mut world = World::new(Box::new(generator), seed);
    world.ensure_area(ChunkPos::new(0, 0), 4);

    let (dx, dy, dz) = CUBOID_DIMENSIONS;
    let dx = dx * scale;
    let min = BlockPos::new(STANDOFF, surface + 1, 0);
    let max = min.offset(dx as i32 - 1, dy as i32 - 1, dz as i32 - 1);
    let region = Region::new(min, max);
    world.fill_region(region, Block::simple(BlockKind::Tnt));

    let spawn_point = Vec3::new(0.5, f64::from(surface) + 1.0, 8.5);
    BuiltWorkload {
        kind: WorkloadKind::Tnt,
        world,
        spawn_point,
        players: PlayerWorkload::single_observer(),
        tnt_fuse_delay_ticks: Some(FUSE_DELAY_TICKS),
        ambient_entities: Vec::new(),
        description: format!(
            "{}x{}x{} TNT cuboid ({} blocks), fused {} ticks after start",
            dx,
            dy,
            dz,
            region.volume(),
            FUSE_DELAY_TICKS
        ),
    }
}

/// Spawn point of the [`clustered_hotspot_world`] scene, well away from the
/// TNT column so the observing player's streamed chunks don't overlap it.
pub const CLUSTERED_HOTSPOT_SPAWN: (f64, f64, f64) = (100.5, 61.0, 100.5);

/// Builds the clustered-TNT *hotspot* scene used by the shard-rebalancing
/// benchmarks and regression tests (not one of the paper's workloads).
///
/// Six TNT slabs sit inside the first 4-chunk x-stripe, spread along z —
/// the shape a static stripe partition piles onto a single shard (one
/// stripe owns the whole column) while an adaptive 2D region partition can
/// split along z and spread across shards. Kept here so the bench and the
/// integration test pinning the busiest-shard improvement measure the
/// identical scene.
#[must_use]
pub fn clustered_hotspot_world(seed: u64) -> World {
    let mut world = World::new(Box::new(FlatGenerator::grassland()), seed);
    world.ensure_area(ChunkPos::new(8, 8), 8);
    for cluster in 0..6 {
        let z0 = 8 + cluster * 40;
        world.fill_region(
            Region::new(BlockPos::new(8, 61, z0), BlockPos::new(40, 62, z0 + 8)),
            Block::simple(BlockKind::Tnt),
        );
    }
    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_hotspot_sits_inside_one_x_stripe() {
        let world = clustered_hotspot_world(7);
        assert!(world.count_kind(BlockKind::Tnt) > 0);
        // Every TNT block lives in chunk columns 0..3 — a single 4-chunk
        // stripe — which is the property the rebalancing comparison needs.
        for chunk in world.iter_chunks() {
            if chunk.count_kind(BlockKind::Tnt) > 0 {
                assert!(
                    (0..4).contains(&chunk.pos().x),
                    "TNT leaked outside the first stripe: {:?}",
                    chunk.pos()
                );
            }
        }
    }

    #[test]
    fn cuboid_has_the_paper_dimensions_at_scale_one() {
        let built = build(1, 1);
        let tnt = built.world.count_kind(BlockKind::Tnt);
        assert_eq!(tnt, 16 * 14 * 16);
    }

    #[test]
    fn fuse_is_about_twenty_seconds() {
        let built = build(1, 1);
        assert_eq!(built.tnt_fuse_delay_ticks, Some(400));
        // 400 ticks at 50 ms = 20 s.
        assert_eq!(400 * 50, 20_000);
    }

    #[test]
    fn scale_multiplies_the_tnt_volume() {
        let one = build(1, 1).world.count_kind(BlockKind::Tnt);
        let two = build(1, 2).world.count_kind(BlockKind::Tnt);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn spawn_is_outside_the_blast_cuboid() {
        let built = build(1, 1);
        let spawn_block = built.spawn_point.block_pos();
        assert!(
            spawn_block.x < STANDOFF - 4,
            "observer spawns away from the cuboid"
        );
    }
}
