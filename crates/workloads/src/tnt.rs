//! The TNT workload: a cuboid of TNT detonated shortly after a player joins.
//!
//! "The TNT world contains a 16-by-16-by-14 cuboid filled with TNT blocks
//! which are set to explode around 20 seconds after a player connects. […]
//! when a large section of TNT is activated, the MLG must perform a large
//! number of both entity-collision and physics calculations."
//! (Section 3.3.1.)

use mlg_entity::Vec3;
use mlg_world::generation::FlatGenerator;
use mlg_world::{Block, BlockKind, BlockPos, ChunkPos, Region, World};

use crate::spec::{BuiltWorkload, PlayerWorkload, WorkloadKind};

/// Ticks between experiment start and TNT ignition (~20 seconds at 20 Hz).
pub const FUSE_DELAY_TICKS: u64 = 400;

/// Base dimensions of the TNT cuboid (x, y, z) at scale 1, matching Table 2.
pub const CUBOID_DIMENSIONS: (u32, u32, u32) = (16, 14, 16);

/// Distance between the spawn point and the nearest cuboid face, in blocks.
const STANDOFF: i32 = 24;

/// Builds the TNT world. `scale` multiplies the cuboid's horizontal footprint.
#[must_use]
pub fn build(seed: u64, scale: u32) -> BuiltWorkload {
    let generator = FlatGenerator::grassland();
    let surface = generator.surface_y();
    let mut world = World::new(Box::new(generator), seed);
    world.ensure_area(ChunkPos::new(0, 0), 4);

    let (dx, dy, dz) = CUBOID_DIMENSIONS;
    let dx = dx * scale;
    let min = BlockPos::new(STANDOFF, surface + 1, 0);
    let max = min.offset(dx as i32 - 1, dy as i32 - 1, dz as i32 - 1);
    let region = Region::new(min, max);
    world.fill_region(region, Block::simple(BlockKind::Tnt));

    let spawn_point = Vec3::new(0.5, f64::from(surface) + 1.0, 8.5);
    BuiltWorkload {
        kind: WorkloadKind::Tnt,
        world,
        spawn_point,
        players: PlayerWorkload::single_observer(),
        tnt_fuse_delay_ticks: Some(FUSE_DELAY_TICKS),
        ambient_entities: Vec::new(),
        description: format!(
            "{}x{}x{} TNT cuboid ({} blocks), fused {} ticks after start",
            dx,
            dy,
            dz,
            region.volume(),
            FUSE_DELAY_TICKS
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuboid_has_the_paper_dimensions_at_scale_one() {
        let built = build(1, 1);
        let tnt = built.world.count_kind(BlockKind::Tnt);
        assert_eq!(tnt, 16 * 14 * 16);
    }

    #[test]
    fn fuse_is_about_twenty_seconds() {
        let built = build(1, 1);
        assert_eq!(built.tnt_fuse_delay_ticks, Some(400));
        // 400 ticks at 50 ms = 20 s.
        assert_eq!(400 * 50, 20_000);
    }

    #[test]
    fn scale_multiplies_the_tnt_volume() {
        let one = build(1, 1).world.count_kind(BlockKind::Tnt);
        let two = build(1, 2).world.count_kind(BlockKind::Tnt);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn spawn_is_outside_the_blast_cuboid() {
        let built = build(1, 1);
        let spawn_block = built.spawn_point.block_pos();
        assert!(
            spawn_block.x < STANDOFF - 4,
            "observer spawns away from the cuboid"
        );
    }
}
