//! The Meterstick benchmark workloads.
//!
//! Section 3.3 of the paper defines four *environment-based* workload worlds
//! (Table 2) plus a *player-based* workload:
//!
//! | name    | character                                            |
//! |---------|------------------------------------------------------|
//! | Control | freshly generated world, best-case baseline          |
//! | TNT     | 16×16×14 cuboid of TNT detonated ~20 s after a player connects |
//! | Farm    | popular community resource-farm constructs (Table 3)  |
//! | Lag     | a lag machine: dense logic-gate clocks firing every other tick |
//! | Players | 25 emulated players random-walking in a 32×32 area    |
//!
//! The original worlds are community `.schematic`/world downloads that cannot
//! be redistributed here, so each world is rebuilt *programmatically* with
//! constructs that exercise the same simulation rules (fluid transport,
//! entity spawning, redstone clocks, piston harvesting, hopper collection,
//! TNT chain reactions). The substitution is documented in `DESIGN.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod control;
pub mod farm;
pub mod lag;
pub mod spec;
pub mod tnt;

pub use spec::{BuiltWorkload, PlayerWorkload, WorkloadKind, WorkloadSpec};
