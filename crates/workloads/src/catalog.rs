//! Workload catalogue: the metadata of Tables 2 and 3.

use serde::{Deserialize, Serialize};

use crate::spec::WorkloadKind;

/// One row of Table 2: a workload world and its properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldCatalogEntry {
    /// Which workload the world backs.
    pub kind: WorkloadKind,
    /// Property summary as given in Table 2.
    pub properties: &'static str,
    /// On-disk size of the original world download, in MB (Table 2).
    pub original_size_mb: f64,
}

/// Returns Table 2: the Minecraft worlds used as workload starting points.
#[must_use]
pub fn table2_worlds() -> Vec<WorldCatalogEntry> {
    vec![
        WorldCatalogEntry {
            kind: WorkloadKind::Control,
            properties: "Freshly generated world",
            original_size_mb: 5.4,
        },
        WorldCatalogEntry {
            kind: WorkloadKind::Tnt,
            properties: "Entity actions, terrain updates",
            original_size_mb: 6.3,
        },
        WorldCatalogEntry {
            kind: WorkloadKind::Farm,
            properties: "Resource Farm constructs",
            original_size_mb: 26.0,
        },
        WorldCatalogEntry {
            kind: WorkloadKind::Lag,
            properties: "Complex simulated construct, stress test",
            original_size_mb: 4.7,
        },
    ]
}

/// One row of Table 3: a simulated construct in the Farm world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmConstructEntry {
    /// Construct name.
    pub name: &'static str,
    /// How many copies the Farm world contains.
    pub amount: u32,
    /// The community author credited in the paper.
    pub author: &'static str,
    /// Popularity of the design, in millions of video views.
    pub popularity_million_views: f64,
}

/// Returns Table 3: the simulated constructs in the Farm world.
#[must_use]
pub fn table3_constructs() -> Vec<FarmConstructEntry> {
    vec![
        FarmConstructEntry {
            name: "Entity Farm",
            amount: 12,
            author: "gnembon",
            popularity_million_views: 1.7,
        },
        FarmConstructEntry {
            name: "Stone Farm",
            amount: 4,
            author: "Shulkercraft",
            popularity_million_views: 1.3,
        },
        FarmConstructEntry {
            name: "Kelp Farm",
            amount: 4,
            author: "Mumbo Jumbo",
            popularity_million_views: 2.5,
        },
        FarmConstructEntry {
            name: "Item Sorter",
            amount: 1,
            author: "Mysticat",
            popularity_million_views: 0.8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{farm, spec::WorkloadSpec};

    #[test]
    fn table2_lists_the_four_environment_worlds() {
        let worlds = table2_worlds();
        assert_eq!(worlds.len(), 4);
        let kinds: Vec<_> = worlds.iter().map(|w| w.kind).collect();
        for kind in WorkloadKind::environment_based() {
            assert!(kinds.contains(&kind));
        }
    }

    #[test]
    fn table3_matches_the_built_farm_world() {
        let constructs = table3_constructs();
        let by_name = |name: &str| constructs.iter().find(|c| c.name == name).unwrap().amount;
        assert_eq!(by_name("Entity Farm"), farm::ENTITY_FARMS);
        assert_eq!(by_name("Stone Farm"), farm::STONE_FARMS);
        assert_eq!(by_name("Kelp Farm"), farm::KELP_FARMS);
        assert_eq!(by_name("Item Sorter"), farm::ITEM_SORTERS);
    }

    #[test]
    fn average_popularity_matches_the_paper_claim() {
        // "each have 1.6 million views on average"
        let constructs = table3_constructs();
        let mean: f64 = constructs
            .iter()
            .map(|c| c.popularity_million_views)
            .sum::<f64>()
            / constructs.len() as f64;
        assert!((mean - 1.575).abs() < 0.1);
    }

    #[test]
    fn every_catalogued_world_can_be_built() {
        for entry in table2_worlds() {
            let built = WorkloadSpec::new(entry.kind).build(9);
            assert_eq!(built.kind, entry.kind);
        }
    }
}
