//! Workload specification and construction.

use serde::{Deserialize, Serialize};

use mlg_entity::{EntityKind, Vec3};
use mlg_world::World;

use crate::{control, farm, lag, tnt};

/// The five Meterstick workloads, plus the beyond-paper Crowd workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Freshly generated world; best-case baseline.
    Control,
    /// The TNT cuboid world; entity actions and terrain updates.
    Tnt,
    /// The resource-farm world; simulated constructs.
    Farm,
    /// The lag-machine world; worst-case stress test.
    Lag,
    /// The player-based workload: 25 bots random-walking on the Control world.
    Players,
    /// The player-heavy crowd workload: 200+ bots clustered in a small
    /// area, walking *and* editing terrain (block place/dig). Not part of
    /// the paper's evaluation; it exists to load the player-handler and
    /// dissemination stages of the tick graph the way the paper's TNT
    /// world loads the entity stage. Excluded from [`WorkloadKind::all`]
    /// (the paper's set), included in [`WorkloadKind::extended`].
    Crowd,
    /// The scaled-population workload: thousands of wandering/building
    /// bots scattered over a large world — 10–100× the paper's player
    /// counts. Exists to exercise the entity substrate and area-of-interest
    /// dissemination at populations the paper's benchmark could not reach:
    /// the scatter keeps each player's interest set small, so per-tick
    /// dissemination cost tracks Σ|interest set| instead of
    /// packets × players. Excluded from [`WorkloadKind::all`] (the paper's
    /// set), included in [`WorkloadKind::extended`].
    Horde,
}

impl WorkloadKind {
    /// All workloads in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> [WorkloadKind; 5] {
        [
            WorkloadKind::Control,
            WorkloadKind::Farm,
            WorkloadKind::Tnt,
            WorkloadKind::Lag,
            WorkloadKind::Players,
        ]
    }

    /// The paper's five workloads plus the player-heavy Crowd workload and
    /// the scaled-population Horde workload.
    #[must_use]
    pub fn extended() -> [WorkloadKind; 7] {
        [
            WorkloadKind::Control,
            WorkloadKind::Farm,
            WorkloadKind::Tnt,
            WorkloadKind::Lag,
            WorkloadKind::Players,
            WorkloadKind::Crowd,
            WorkloadKind::Horde,
        ]
    }

    /// The environment-based workloads (everything except Players).
    #[must_use]
    pub fn environment_based() -> [WorkloadKind; 4] {
        [
            WorkloadKind::Control,
            WorkloadKind::Farm,
            WorkloadKind::Tnt,
            WorkloadKind::Lag,
        ]
    }

    /// Display name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Control => "Control",
            WorkloadKind::Tnt => "TNT",
            WorkloadKind::Farm => "Farm",
            WorkloadKind::Lag => "Lag",
            WorkloadKind::Players => "Players",
            WorkloadKind::Crowd => "Crowd",
            WorkloadKind::Horde => "Horde",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The player-based part of a workload: how many bots connect and how they
/// behave (Section 3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerWorkload {
    /// Number of emulated players to connect.
    pub bots: u32,
    /// Side length of the square area the bots random-walk in, in blocks.
    pub walk_area: u32,
    /// Whether the bots move at all (environment workloads connect a single
    /// idle observer that only probes response time).
    pub moving: bool,
    /// Whether the bots also edit terrain (periodic block place/dig near
    /// their position) — the Crowd workload's player-handler load.
    pub building: bool,
    /// Side length of the square the bots' *home positions* scatter over,
    /// in blocks (0 = everyone starts at the spawn point). Each bot walks
    /// its `walk_area` around its own home, so a large scatter spreads the
    /// population thin — the Horde workload's area-of-interest regime.
    pub scatter: u32,
}

impl PlayerWorkload {
    /// A single idle observer used by the environment-based workloads
    /// ("During all environment-based workloads, Meterstick connects to the
    /// game a single player that performs no actions").
    #[must_use]
    pub fn single_observer() -> Self {
        PlayerWorkload {
            bots: 1,
            walk_area: 0,
            moving: false,
            building: false,
            scatter: 0,
        }
    }

    /// The Players workload: 25 bots random-walking in a 32×32 area.
    #[must_use]
    pub fn random_walkers() -> Self {
        PlayerWorkload {
            bots: 25,
            walk_area: 32,
            moving: true,
            building: false,
            scatter: 0,
        }
    }

    /// The Crowd workload: 220 bots clustered in a 24x24 area, walking and
    /// editing terrain. The cluster fits inside a handful of chunks, so on
    /// a sharded server the load lands on few shards until the adaptive
    /// partition splits them -- a player-stage hotspot by construction.
    #[must_use]
    pub fn builder_crowd() -> Self {
        PlayerWorkload {
            bots: 220,
            walk_area: 24,
            moving: true,
            building: true,
            scatter: 0,
        }
    }

    /// The Horde workload: 5,000 wandering builder bots, their homes
    /// scattered over a ~1 km² area. Population is 10–100× the paper's
    /// player counts; the spread keeps interest sets small, so this is the
    /// regime where area-of-interest dissemination separates from full
    /// broadcast (Σ|AoI| ≪ packets × players).
    #[must_use]
    pub fn horde() -> Self {
        PlayerWorkload {
            bots: 5_000,
            walk_area: 16,
            moving: true,
            building: true,
            scatter: 1_024,
        }
    }
}

/// A workload to build: the kind plus the scale knob (R8 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Workload intensity multiplier (1 = the paper's configuration).
    pub scale: u32,
}

impl WorkloadSpec {
    /// Creates a spec at scale 1.
    #[must_use]
    pub fn new(kind: WorkloadKind) -> Self {
        WorkloadSpec { kind, scale: 1 }
    }

    /// Creates a spec at a custom scale.
    #[must_use]
    pub fn with_scale(kind: WorkloadKind, scale: u32) -> Self {
        WorkloadSpec {
            kind,
            scale: scale.max(1),
        }
    }

    /// Builds the workload world deterministically from `seed`.
    #[must_use]
    pub fn build(&self, seed: u64) -> BuiltWorkload {
        match self.kind {
            WorkloadKind::Control => control::build(seed, self.scale),
            WorkloadKind::Tnt => tnt::build(seed, self.scale),
            WorkloadKind::Farm => farm::build(seed, self.scale),
            WorkloadKind::Lag => lag::build(seed, self.scale),
            WorkloadKind::Players => {
                let mut built = control::build(seed, self.scale);
                built.kind = WorkloadKind::Players;
                built.players = PlayerWorkload::random_walkers();
                built
            }
            WorkloadKind::Crowd => {
                let mut built = control::build(seed, self.scale);
                built.kind = WorkloadKind::Crowd;
                built.players = PlayerWorkload::builder_crowd();
                built.description =
                    "player-heavy crowd: 220 building bots clustered on the Control world".into();
                built
            }
            WorkloadKind::Horde => {
                let mut built = control::build(seed, self.scale);
                built.kind = WorkloadKind::Horde;
                built.players = PlayerWorkload::horde();
                built.description =
                    "scaled population: 5,000 wandering builder bots scattered over ~1 km²".into();
                built
            }
        }
    }
}

/// A fully constructed workload, ready to hand to a game server.
pub struct BuiltWorkload {
    /// Which workload this is.
    pub kind: WorkloadKind,
    /// The world to load into the server.
    pub world: World,
    /// Where connected players spawn.
    pub spawn_point: Vec3,
    /// The player-based part of the workload.
    pub players: PlayerWorkload,
    /// If set, every TNT block in the world is scheduled to ignite this many
    /// ticks after the experiment starts (TNT workload: ~20 seconds).
    pub tnt_fuse_delay_ticks: Option<u64>,
    /// Ambient entities present when the experiment starts (grazing animals,
    /// villagers); freshly generated Minecraft worlds are never empty of
    /// entities, and their movement packets are what makes entity traffic
    /// dominate even the Control workload (Table 8).
    pub ambient_entities: Vec<(EntityKind, Vec3)>,
    /// Human-readable description of what was built.
    pub description: String,
}

impl std::fmt::Debug for BuiltWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltWorkload")
            .field("kind", &self.kind)
            .field("spawn_point", &self.spawn_point)
            .field("players", &self.players)
            .field("description", &self.description)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build() {
        for kind in WorkloadKind::all() {
            let built = WorkloadSpec::new(kind).build(42);
            assert_eq!(built.kind, kind);
            assert!(
                built.world.loaded_chunk_count() > 0,
                "{kind} world must have chunks"
            );
            assert!(!built.description.is_empty());
        }
    }

    #[test]
    fn players_workload_uses_random_walkers() {
        let built = WorkloadSpec::new(WorkloadKind::Players).build(1);
        assert_eq!(built.players.bots, 25);
        assert_eq!(built.players.walk_area, 32);
        assert!(built.players.moving);
    }

    #[test]
    fn environment_workloads_use_a_single_observer() {
        for kind in [
            WorkloadKind::Control,
            WorkloadKind::Farm,
            WorkloadKind::Tnt,
            WorkloadKind::Lag,
        ] {
            let built = WorkloadSpec::new(kind).build(1);
            assert_eq!(built.players.bots, 1, "{kind}");
            assert!(!built.players.moving);
        }
    }

    #[test]
    fn scale_is_clamped_to_at_least_one() {
        let spec = WorkloadSpec::with_scale(WorkloadKind::Control, 0);
        assert_eq!(spec.scale, 1);
    }

    #[test]
    fn only_tnt_has_a_fuse() {
        for kind in WorkloadKind::all() {
            let built = WorkloadSpec::new(kind).build(3);
            if kind == WorkloadKind::Tnt {
                assert!(built.tnt_fuse_delay_ticks.is_some());
            } else {
                assert!(built.tnt_fuse_delay_ticks.is_none(), "{kind}");
            }
        }
    }

    #[test]
    fn kind_lists_and_names() {
        assert_eq!(WorkloadKind::all().len(), 5);
        assert_eq!(WorkloadKind::environment_based().len(), 4);
        assert_eq!(WorkloadKind::Tnt.to_string(), "TNT");
        assert!(
            !WorkloadKind::all().contains(&WorkloadKind::Crowd),
            "Crowd is not one of the paper's workloads"
        );
        assert_eq!(WorkloadKind::extended().len(), 7);
        assert!(WorkloadKind::extended().contains(&WorkloadKind::Crowd));
        assert!(WorkloadKind::extended().contains(&WorkloadKind::Horde));
        assert!(
            !WorkloadKind::all().contains(&WorkloadKind::Horde),
            "Horde is not one of the paper's workloads"
        );
    }

    #[test]
    fn horde_workload_is_a_scattered_swarm_at_scale() {
        let built = WorkloadSpec::new(WorkloadKind::Horde).build(1);
        assert_eq!(built.kind, WorkloadKind::Horde);
        assert!(
            built.players.bots >= 5_000,
            "Horde must be 10-100x the paper's populations"
        );
        assert!(built.players.moving);
        assert!(built.players.building);
        assert!(
            built.players.scatter >= 1_000,
            "the horde spreads out so interest sets stay small"
        );
        // Every other workload keeps the whole swarm at the spawn point.
        for kind in WorkloadKind::extended() {
            if kind != WorkloadKind::Horde {
                assert_eq!(
                    WorkloadSpec::new(kind).build(1).players.scatter,
                    0,
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn crowd_workload_is_a_clustered_builder_swarm() {
        let built = WorkloadSpec::new(WorkloadKind::Crowd).build(1);
        assert_eq!(built.kind, WorkloadKind::Crowd);
        assert!(built.players.bots >= 200, "Crowd must be player-heavy");
        assert!(built.players.moving);
        assert!(built.players.building);
        assert!(
            built.players.walk_area <= 32,
            "the crowd stays clustered so the player load is a shard hotspot"
        );
        assert!(
            !WorkloadSpec::new(WorkloadKind::Players)
                .build(1)
                .players
                .building
        );
    }
}
