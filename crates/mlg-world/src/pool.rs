//! The persistent tick worker pool: long-lived parked workers that execute
//! every parallel phase of the tick path.
//!
//! # Why a persistent pool
//!
//! Through PR 4 every parallel phase of every tick — terrain cascade
//! rounds, random ticks, frozen relighting, the sharded player handler,
//! batched entities — opened a fresh `crossbeam::thread::scope`, spawning
//! and joining OS threads once *per phase per tick*. That substrate tax is
//! pure runtime-environment overhead in the sense of Reichelt et al.
//! (arXiv:2411.05491): it inflates wall-clock measurements without touching
//! the modeled work, so benchmark deltas between architectures get polluted
//! by thread spawn/join noise. [`TickWorkerPool`] replaces the per-phase
//! scopes with `tick_threads - 1` workers spawned once per server and
//! parked between phases (a blocking `crossbeam::channel` receive), plus
//! the calling thread itself, which always participates as the final
//! executor.
//!
//! # Design: owned jobs, no work stealing
//!
//! The workspace forbids `unsafe` code, so pool jobs cannot borrow the
//! tick's state the way scoped threads can — everything a phase needs is
//! packaged into an owned *context* value ([`PoolScope::run_tasks_ctx`])
//! that is shared behind an `Arc` for the duration of the phase and handed
//! back to the caller afterwards. The world's chunks move into such a
//! context wholesale via [`World::snapshot_chunks`] (pointer moves, not
//! copies), which is how the frozen phases read terrain from pool workers.
//!
//! Jobs are claimed from one shared injector queue — there are no
//! per-worker deques and no work stealing. Claiming order is racy, but
//! every task is self-contained and results are re-ordered by index, so the
//! output is **bit-identical for any executor count** — including the pool
//! vs the scoped fallback vs fully inline execution. The determinism
//! contract of the sharded tick pipeline (canonical shard merge order; see
//! [`crate::shard`]) is therefore unaffected by who executes the tasks.
//!
//! # Shutdown
//!
//! Dropping the pool hangs up the injector channel; parked workers observe
//! the disconnect, drain nothing (the queue is empty between phases by
//! construction) and exit, and `Drop` joins them. `GameServer` owns one
//! pool per server instance, so a server going away reliably reclaims its
//! threads.
//!
//! [`World::snapshot_chunks`]: crate::world::World::snapshot_chunks

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};

use crate::shard;

/// A unit of work enqueued on the pool: fully owned, so it can outlive any
/// borrow of the tick's state.
type Job = Box<dyn FnOnce() + Send>;

/// Extracts a human-readable message from a panic payload so worker panics
/// can be re-raised on the calling thread.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// A long-lived pool of parked tick workers (see the [module docs](self)).
///
/// Created once per game server from `ServerConfig::tick_threads` and
/// reused by every parallel phase of every tick; `tick_threads - 1` threads
/// are spawned, because the thread calling [`TickWorkerPool::scope`] always
/// executes jobs too. The pool is execution infrastructure only: results
/// are bit-identical whether a phase runs here, on fresh scoped threads, or
/// inline on one thread.
pub struct TickWorkerPool {
    /// Job injector; `None` only during `Drop`, which hangs the channel up
    /// to release the parked workers before joining them.
    injector: Option<Sender<Job>>,
    /// The shared claim queue. Workers block on it between phases; the
    /// calling thread drains it non-blockingly while a phase is in flight.
    feed: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
    executors: u32,
}

impl std::fmt::Debug for TickWorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickWorkerPool")
            .field("executors", &self.executors)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl TickWorkerPool {
    /// Creates a pool sized for `tick_threads` total executors (clamped to
    /// at least 1): `tick_threads - 1` parked worker threads plus the
    /// calling thread. A pool for `tick_threads <= 1` spawns no threads at
    /// all and runs every phase inline.
    #[must_use]
    pub fn new(tick_threads: u32) -> Self {
        let executors = tick_threads.max(1);
        let (injector, feed) = channel::unbounded::<Job>();
        let workers = (1..executors)
            .map(|index| {
                let feed = feed.clone();
                std::thread::Builder::new()
                    .name(format!("mlg-tick-worker-{index}"))
                    .spawn(move || {
                        // Parked here between phases; `recv` fails only
                        // when the pool is dropped.
                        while let Ok(job) = feed.recv() {
                            job();
                        }
                    })
                    .expect("spawn tick worker")
            })
            .collect();
        TickWorkerPool {
            injector: Some(injector),
            feed,
            workers,
            executors,
        }
    }

    /// Total executor count (worker threads plus the calling thread).
    #[must_use]
    pub fn executors(&self) -> u32 {
        self.executors
    }

    /// A [`PoolScope`] dispatching onto this pool.
    #[must_use]
    pub fn scope(&self) -> PoolScope<'_> {
        PoolScope {
            kind: ScopeKind::Pool(self),
        }
    }

    /// Runs `f` over every task, fanning out across the pool, and returns
    /// the tasks in input order together with the context.
    fn run<T, C, F>(&self, mut tasks: Vec<T>, ctx: C, f: F) -> (Vec<T>, C)
    where
        T: Send + 'static,
        C: Send + Sync + 'static,
        F: Fn(usize, &mut T, &C) + Send + Sync + 'static,
    {
        let total = tasks.len();
        if total <= 1 || self.executors <= 1 {
            for (index, task) in tasks.iter_mut().enumerate() {
                f(index, task, &ctx);
            }
            return (tasks, ctx);
        }

        let shared = Arc::new((ctx, f));
        let (done_tx, done_rx) = channel::unbounded::<(usize, Result<T, String>)>();
        let injector = self
            .injector
            .as_ref()
            .expect("injector present outside Drop");
        for (index, task) in tasks.drain(..).enumerate() {
            let shared = Arc::clone(&shared);
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let mut task = task;
                // A panicking job must still produce a completion message,
                // otherwise the collector below would wait forever.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    (shared.1)(index, &mut task, &shared.0);
                    task
                }))
                .map_err(panic_message);
                // Release the context *before* reporting completion: once
                // the caller has collected every message, its own Arc is
                // provably the last one and the context can be unwrapped.
                drop(shared);
                let _ = done_tx.send((index, outcome));
            });
            let _ = injector.send(job);
        }
        drop(done_tx);

        // The calling thread is an executor too: claim jobs until the
        // injector queue is drained, then wait for stragglers on workers.
        while let Ok(job) = self.feed.try_recv() {
            job();
        }

        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(total, || None);
        let mut first_panic: Option<String> = None;
        for _ in 0..total {
            let (index, outcome) = done_rx.recv().expect("one completion per job");
            match outcome {
                Ok(task) => slots[index] = Some(task),
                Err(message) => {
                    if first_panic.is_none() {
                        first_panic = Some(message);
                    }
                }
            }
        }
        if let Some(message) = first_panic {
            panic!("tick worker panicked: {message}");
        }
        let tasks = slots
            .into_iter()
            .map(|slot| slot.expect("every job completed"))
            .collect();
        let Ok((ctx, _)) = Arc::try_unwrap(shared) else {
            unreachable!("every job released its context before completing")
        };
        (tasks, ctx)
    }
}

impl Drop for TickWorkerPool {
    fn drop(&mut self) {
        // Hang up the injector so parked workers observe the disconnect…
        self.injector = None;
        // …and join them. Worker panics cannot reach here (jobs run under
        // `catch_unwind`), so a join error means the thread was killed
        // externally; nothing useful can be done with it during drop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A cloneable, comparison-transparent handle to a server's worker pool,
/// embedded in [`crate::shard::TickPipeline`].
///
/// The pool is pure execution infrastructure: two pipelines that differ
/// only in their pool attachment produce bit-identical results, so the
/// handle always compares equal and is skipped by `Debug`-level state
/// comparisons. Cloning a pipeline shares the pool (`Arc`), matching the
/// one-pool-per-server ownership model.
#[derive(Clone, Default)]
pub struct PoolHandle(Option<Arc<TickWorkerPool>>);

impl PoolHandle {
    /// A handle to the given pool.
    #[must_use]
    pub fn attached(pool: Arc<TickWorkerPool>) -> Self {
        PoolHandle(Some(pool))
    }

    /// A handle with no pool (phases fall back to scoped threads).
    #[must_use]
    pub fn detached() -> Self {
        PoolHandle(None)
    }

    /// The attached pool, if any.
    #[must_use]
    pub fn get(&self) -> Option<&Arc<TickWorkerPool>> {
        self.0.as_ref()
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(pool) => write!(f, "PoolHandle({} executors)", pool.executors()),
            None => f.write_str("PoolHandle(detached)"),
        }
    }
}

impl PartialEq for PoolHandle {
    /// Pool attachment never affects results, so handles always compare
    /// equal — pipeline equality stays a statement about the *modeled*
    /// architecture.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for PoolHandle {}

/// How one parallel tick phase executes: on the persistent pool, or on
/// per-phase scoped threads (the fallback for `tick_threads <= 1` and for
/// pool-less pipelines, and the baseline the `worker_pool` bench group
/// compares against).
///
/// Obtained from `TickPipeline::scope()`; both variants expose the same
/// task-list API and produce bit-identical results for the same inputs.
#[derive(Debug, Clone, Copy)]
pub struct PoolScope<'a> {
    kind: ScopeKind<'a>,
}

#[derive(Debug, Clone, Copy)]
enum ScopeKind<'a> {
    Pool(&'a TickWorkerPool),
    Scoped { threads: u32 },
}

impl<'a> PoolScope<'a> {
    /// A scope that opens a fresh `crossbeam::thread::scope` per call (or
    /// runs inline for `threads <= 1`) — the pre-pool execution model, kept
    /// as the fallback path and the bench baseline.
    #[must_use]
    pub fn scoped(threads: u32) -> Self {
        PoolScope {
            kind: ScopeKind::Scoped {
                threads: threads.max(1),
            },
        }
    }

    /// Executor count this scope fans tasks over.
    #[must_use]
    pub fn threads(&self) -> u32 {
        match self.kind {
            ScopeKind::Pool(pool) => pool.executors(),
            ScopeKind::Scoped { threads } => threads,
        }
    }

    /// Returns `true` when this scope dispatches onto a persistent pool.
    #[must_use]
    pub fn is_pooled(&self) -> bool {
        matches!(self.kind, ScopeKind::Pool(_))
    }

    /// Runs independent tasks and returns them in input order — the
    /// context-free form of [`PoolScope::run_tasks_ctx`], for closures that
    /// need nothing beyond the task itself.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn run_tasks<T, F>(&self, tasks: Vec<T>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut T) + Send + Sync + 'static,
    {
        self.run_tasks_ctx(tasks, (), move |index, task, ()| f(index, task))
            .0
    }

    /// Runs independent tasks against a shared phase context and returns
    /// `(tasks, context)`, tasks in input order.
    ///
    /// The context carries everything the phase needs beyond the per-task
    /// state — the shard map, a generator handle, a chunk snapshot, RNG
    /// seeds — *by value*, because persistent pool workers cannot borrow
    /// the caller's stack. It is returned so callers can move expensive
    /// state (e.g. the world's chunks) back out; on the pool path the pool
    /// guarantees every worker released its reference before returning.
    ///
    /// Determinism: tasks are claimed in racy order but results re-order by
    /// index, so for a fixed `(tasks, ctx, f)` the output is bit-identical
    /// across every executor count and both scope variants.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn run_tasks_ctx<T, C, F>(&self, tasks: Vec<T>, ctx: C, f: F) -> (Vec<T>, C)
    where
        T: Send + 'static,
        C: Send + Sync + 'static,
        F: Fn(usize, &mut T, &C) + Send + Sync + 'static,
    {
        match self.kind {
            ScopeKind::Pool(pool) => pool.run(tasks, ctx, f),
            ScopeKind::Scoped { threads } => {
                let tasks = shard::run_tasks(tasks, threads, |index, task| f(index, task, &ctx));
                (tasks, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uneven, collision-prone work so claiming order actually varies.
    fn scramble(index: usize, task: &mut u64, salt: &u64) {
        let mut acc = *task ^ *salt;
        for i in 0..(*task % 7) * 1_000 {
            acc = acc.wrapping_mul(31).wrapping_add(i ^ index as u64);
        }
        *task = acc;
    }

    #[test]
    fn pool_matches_inline_and_scoped_results() {
        let input: Vec<u64> = (0..57).collect();
        let inline = PoolScope::scoped(1)
            .run_tasks_ctx(input.clone(), 7u64, scramble)
            .0;
        let scoped = PoolScope::scoped(8)
            .run_tasks_ctx(input.clone(), 7u64, scramble)
            .0;
        assert_eq!(inline, scoped);
        for executors in [2u32, 4, 8] {
            let pool = TickWorkerPool::new(executors);
            let pooled = pool.scope().run_tasks_ctx(input.clone(), 7u64, scramble).0;
            assert_eq!(inline, pooled, "{executors} executors diverged");
        }
    }

    #[test]
    fn context_round_trips_through_the_pool() {
        let pool = TickWorkerPool::new(4);
        let ctx = vec![1u64, 2, 3];
        let (tasks, ctx_back) =
            pool.scope()
                .run_tasks_ctx(vec![0u64; 16], ctx, |_, task, ctx: &Vec<u64>| {
                    *task = ctx.iter().sum();
                });
        assert_eq!(ctx_back, vec![1, 2, 3], "context must come back intact");
        assert!(tasks.iter().all(|&t| t == 6));
    }

    #[test]
    fn one_pool_survives_many_phases() {
        // The whole point: one spawn, thousands of phases.
        let pool = TickWorkerPool::new(4);
        let mut acc: Vec<u64> = (0..16).collect();
        for round in 0..500u64 {
            acc = pool.scope().run_tasks(acc, move |_, t| {
                *t = t.wrapping_mul(3).wrapping_add(round);
            });
        }
        let mut expected: Vec<u64> = (0..16).collect();
        for round in 0..500u64 {
            for t in &mut expected {
                *t = t.wrapping_mul(3).wrapping_add(round);
            }
        }
        assert_eq!(acc, expected);
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let pool = TickWorkerPool::new(4);
        assert!(pool
            .scope()
            .run_tasks(Vec::<u64>::new(), |_, _| {})
            .is_empty());
        assert_eq!(
            pool.scope().run_tasks(vec![41u64], |_, t| *t += 1),
            vec![42]
        );
    }

    #[test]
    fn degenerate_pool_runs_inline_without_workers() {
        let pool = TickWorkerPool::new(0);
        assert_eq!(pool.executors(), 1);
        assert_eq!(
            pool.scope().run_tasks(vec![1u64, 2, 3], |_, t| *t *= 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    #[should_panic(expected = "tick worker panicked")]
    fn pool_propagates_job_panics() {
        let pool = TickWorkerPool::new(2);
        let _ = pool.scope().run_tasks(vec![0u32, 1, 2, 3], |_, t| {
            assert!(*t != 2, "boom");
        });
    }

    #[test]
    fn pool_is_reusable_after_a_panicking_phase() {
        let pool = TickWorkerPool::new(4);
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            pool.scope().run_tasks(vec![0u32, 1, 2, 3], |_, t| {
                assert!(*t != 2, "boom");
            })
        }));
        assert!(poisoned.is_err());
        assert_eq!(
            pool.scope().run_tasks(vec![10u32, 20], |_, t| *t += 1),
            vec![11, 21],
            "a panicking phase must not wedge the pool"
        );
    }

    #[test]
    fn drop_joins_all_workers() {
        // Must return promptly rather than hang on parked workers.
        let pool = TickWorkerPool::new(8);
        let _ = pool
            .scope()
            .run_tasks((0..64u64).collect(), |_, t| *t = t.wrapping_mul(7));
        drop(pool);
    }

    #[test]
    fn pool_handles_always_compare_equal() {
        let a = PoolHandle::attached(Arc::new(TickWorkerPool::new(4)));
        let b = PoolHandle::detached();
        assert_eq!(a, b);
        assert_eq!(a.clone(), a);
        assert!(b.get().is_none());
        assert_eq!(a.get().map(|p| p.executors()), Some(4));
    }
}
