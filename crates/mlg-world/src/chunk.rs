//! Chunk columns: the unit of terrain storage and lazy generation.
//!
//! The world is split into vertical columns of `CHUNK_SIZE × CHUNK_SIZE`
//! blocks spanning the full world height. Chunks are generated lazily when a
//! player (or a workload builder) first touches them — Section 2.2.2 of the
//! paper: "This world is split into areas, which are lazily generated when
//! players come near them."
//!
//! Block storage is palette-compressed (see [`crate::palette`]): the chunk
//! keeps a small palette of distinct block values and packs per-position
//! palette indices into a bit array, so a freshly generated column costs
//! ~12 KB instead of the 64 KB a dense `Vec<Block>` body would, and an
//! untouched all-air chunk costs nothing at all. The `block`/`set_block`/
//! heightmap API is unchanged — rule modules cannot observe the layout.
//!
//! Besides the heightmap and the dissemination dirty flag, the chunk tracks
//! *light-dirty columns*: a 256-bit mask of `(x, z)` columns whose light
//! opacity profile changed since the last relight pass consumed them. The
//! incremental relighting cache in [`crate::world`] uses this mask (plus a
//! pass stamp) to skip re-flooding positions whose 17×17 neighborhood is
//! untouched. State-only block changes (a redstone torch toggling) do not
//! alter opacity and therefore do not dirty the mask — that is what makes
//! clock-driven worlds cheap to relight.

use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockKind};
use crate::palette::PaletteStore;
use crate::pos::ChunkPos;

/// Horizontal edge length of a chunk, in blocks.
pub const CHUNK_SIZE: usize = 16;

/// Height of the world, in blocks. Valid block `y` coordinates are
/// `0..WORLD_HEIGHT`.
pub const WORLD_HEIGHT: usize = 128;

pub(crate) const BLOCKS_PER_CHUNK: usize = CHUNK_SIZE * CHUNK_SIZE * WORLD_HEIGHT;

/// Words in the per-chunk light-dirty column bitmask (256 columns).
const LIGHT_DIRTY_WORDS: usize = CHUNK_SIZE * CHUNK_SIZE / 64;

/// Heap bytes a dense `Vec<Block>` chunk body would occupy. Kept as the
/// baseline for the palette-compression regression tests and benches.
pub const DENSE_BODY_BYTES: usize = BLOCKS_PER_CHUNK * std::mem::size_of::<Block>();

/// A single chunk column of blocks.
///
/// Blocks live in a [`PaletteStore`] indexed by `(x, y, z)` local
/// coordinates. The chunk also tracks a heightmap (highest non-air block per
/// column) used by lighting and spawning, and a dirty flag used by the server
/// to know which chunks need to be re-sent to clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Chunk {
    pos: ChunkPos,
    store: PaletteStore,
    heightmap: Vec<i16>,
    /// Number of non-air blocks, maintained incrementally.
    non_air: u32,
    /// Set when the chunk was modified since the last time it was marked clean.
    dirty: bool,
    /// Bit per `(x, z)` column (bit `z * CHUNK_SIZE + x`): set when a block
    /// change altered the column's light opacity since the last relight-pass
    /// fold. Substrate-only bookkeeping for the relight cache.
    light_dirty: [u64; LIGHT_DIRTY_WORDS],
    /// Relight-pass stamp recorded when the dirty mask was last folded;
    /// cache entries tagged at or before this stamp are invalid for any
    /// window overlapping this chunk.
    light_stamp: u64,
}

impl Chunk {
    /// Creates a new chunk filled with air.
    ///
    /// O(1): the palette store represents an all-air column without index
    /// storage and materializes lazily on the first non-air write.
    #[must_use]
    pub fn empty(pos: ChunkPos) -> Self {
        Chunk {
            pos,
            store: PaletteStore::new_air(),
            heightmap: vec![-1; CHUNK_SIZE * CHUNK_SIZE],
            non_air: 0,
            dirty: false,
            light_dirty: [0; LIGHT_DIRTY_WORDS],
            light_stamp: 0,
        }
    }

    /// Returns the chunk's position in the chunk grid.
    #[must_use]
    pub fn pos(&self) -> ChunkPos {
        self.pos
    }

    fn index(x: usize, y: i32, z: usize) -> Option<usize> {
        if x >= CHUNK_SIZE || z >= CHUNK_SIZE || y < 0 || y as usize >= WORLD_HEIGHT {
            return None;
        }
        Some((y as usize * CHUNK_SIZE + z) * CHUNK_SIZE + x)
    }

    /// Returns the block at local coordinates, or air when out of bounds
    /// vertically.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `z` are outside `0..CHUNK_SIZE`.
    #[must_use]
    pub fn block(&self, x: usize, y: i32, z: usize) -> Block {
        assert!(x < CHUNK_SIZE && z < CHUNK_SIZE, "local xz out of range");
        match Self::index(x, y, z) {
            Some(i) => self.store.get(i),
            None => Block::AIR,
        }
    }

    /// Sets the block at local coordinates and returns the previous block.
    ///
    /// Out-of-range vertical coordinates are ignored and return air.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `z` are outside `0..CHUNK_SIZE`.
    pub fn set_block(&mut self, x: usize, y: i32, z: usize, block: Block) -> Block {
        assert!(x < CHUNK_SIZE && z < CHUNK_SIZE, "local xz out of range");
        let Some(i) = Self::index(x, y, z) else {
            return Block::AIR;
        };
        let old = self.store.get(i);
        if old == block {
            return old;
        }
        self.store.set(i, block);
        self.dirty = true;
        if old.kind().light_opacity() != block.kind().light_opacity() {
            let col = z * CHUNK_SIZE + x;
            self.light_dirty[col / 64] |= 1u64 << (col % 64);
        }
        match (old.is_air(), block.is_air()) {
            (true, false) => self.non_air += 1,
            (false, true) => self.non_air -= 1,
            _ => {}
        }
        self.update_heightmap_column(x, z, y, block);
        old
    }

    /// Fills the vertical run `y_lo..=y_hi` of column `(x, z)` with `block`,
    /// clamping the run to the world's vertical bounds.
    ///
    /// Behaviourally identical to calling [`Chunk::set_block`] for every `y`
    /// in ascending order, but the palette slot is acquired once for the
    /// whole run and the heightmap, light-dirty and non-air bookkeeping are
    /// settled once per column instead of once per block — this is the bulk
    /// write path terrain generators use, which is what keeps lazy
    /// generation off the per-block palette write path.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `z` are outside `0..CHUNK_SIZE`.
    pub fn fill_column(&mut self, x: usize, z: usize, y_lo: i32, y_hi: i32, block: Block) {
        assert!(x < CHUNK_SIZE && z < CHUNK_SIZE, "local xz out of range");
        let y_lo = y_lo.max(0);
        let y_hi = y_hi.min(WORLD_HEIGHT as i32 - 1);
        if y_lo > y_hi {
            return;
        }
        let start = Self::index(x, y_lo, z).expect("run clamped to world bounds");
        let count = (y_hi - y_lo + 1) as usize;
        let new_opacity = block.kind().light_opacity();
        let mut non_air_delta: i64 = 0;
        let mut opacity_changed = false;
        let changed =
            self.store
                .fill_strided(start, CHUNK_SIZE * CHUNK_SIZE, count, block, |old, n| {
                    match (old.is_air(), block.is_air()) {
                        (true, false) => non_air_delta += i64::from(n),
                        (false, true) => non_air_delta -= i64::from(n),
                        _ => {}
                    }
                    if old.kind().light_opacity() != new_opacity {
                        opacity_changed = true;
                    }
                });
        if changed == 0 {
            return;
        }
        self.dirty = true;
        self.non_air = u32::try_from(i64::from(self.non_air) + non_air_delta)
            .expect("non-air counter stays within the chunk volume");
        if opacity_changed {
            let col = z * CHUNK_SIZE + x;
            self.light_dirty[col / 64] |= 1u64 << (col % 64);
        }
        let hm_idx = z * CHUNK_SIZE + x;
        let current = self.heightmap[hm_idx];
        if !block.is_air() {
            if y_hi as i16 > current {
                self.heightmap[hm_idx] = y_hi as i16;
            }
        } else if (y_lo as i16..=y_hi as i16).contains(&current) {
            // The run cleared the column top: scan downwards below the run
            // for the new top, exactly as per-block removal would.
            let mut new_top = -1;
            for yy in (0..y_lo).rev() {
                if let Some(i) = Self::index(x, yy, z) {
                    if !self.store.get(i).is_air() {
                        new_top = yy as i16;
                        break;
                    }
                }
            }
            self.heightmap[hm_idx] = new_top;
        }
    }

    /// Fills the full horizontal slab `y_lo..=y_hi` (every `(x, z)` column)
    /// with `block`, clamping the range to the world's vertical bounds.
    ///
    /// Stored blocks, the heightmap and the non-air counter end up exactly
    /// as if [`Chunk::fill_column`] had been called for all 256 columns,
    /// but the palette write is a single contiguous run (the y-major index
    /// layout makes a horizontal slab one contiguous range), which is what
    /// lets uniform-layer generators skip per-column work entirely. The
    /// light-dirty mask is settled conservatively: if any replaced block
    /// changed opacity, every column is marked (columns the fill did not
    /// actually change are over-invalidated, never under-invalidated —
    /// safe for the relight cache, which only ever *skips* work on clean
    /// columns).
    pub fn fill_slab(&mut self, y_lo: i32, y_hi: i32, block: Block) {
        let y_lo = y_lo.max(0);
        let y_hi = y_hi.min(WORLD_HEIGHT as i32 - 1);
        if y_lo > y_hi {
            return;
        }
        let start = Self::index(0, y_lo, 0).expect("run clamped to world bounds");
        let count = (y_hi - y_lo + 1) as usize * CHUNK_SIZE * CHUNK_SIZE;
        let new_opacity = block.kind().light_opacity();
        let mut non_air_delta: i64 = 0;
        let mut opacity_changed = false;
        let changed = self.store.fill_strided(start, 1, count, block, |old, n| {
            match (old.is_air(), block.is_air()) {
                (true, false) => non_air_delta += i64::from(n),
                (false, true) => non_air_delta -= i64::from(n),
                _ => {}
            }
            if old.kind().light_opacity() != new_opacity {
                opacity_changed = true;
            }
        });
        if changed == 0 {
            return;
        }
        self.dirty = true;
        self.non_air = u32::try_from(i64::from(self.non_air) + non_air_delta)
            .expect("non-air counter stays within the chunk volume");
        if opacity_changed {
            self.light_dirty = [!0; LIGHT_DIRTY_WORDS];
        }
        if !block.is_air() {
            let top = y_hi as i16;
            for hm in &mut self.heightmap {
                if top > *hm {
                    *hm = top;
                }
            }
        } else {
            for x in 0..CHUNK_SIZE {
                for z in 0..CHUNK_SIZE {
                    let hm_idx = z * CHUNK_SIZE + x;
                    if (y_lo as i16..=y_hi as i16).contains(&self.heightmap[hm_idx]) {
                        let mut new_top = -1;
                        for yy in (0..y_lo).rev() {
                            if let Some(i) = Self::index(x, yy, z) {
                                if !self.store.get(i).is_air() {
                                    new_top = yy as i16;
                                    break;
                                }
                            }
                        }
                        self.heightmap[hm_idx] = new_top;
                    }
                }
            }
        }
    }

    fn update_heightmap_column(&mut self, x: usize, z: usize, y: i32, placed: Block) {
        let hm_idx = z * CHUNK_SIZE + x;
        let current = self.heightmap[hm_idx];
        if !placed.is_air() {
            if y as i16 > current {
                self.heightmap[hm_idx] = y as i16;
            }
        } else if y as i16 == current {
            // The top block was removed: scan downwards for the new top.
            let mut new_top = -1;
            for yy in (0..y).rev() {
                if let Some(i) = Self::index(x, yy, z) {
                    if !self.store.get(i).is_air() {
                        new_top = yy as i16;
                        break;
                    }
                }
            }
            self.heightmap[hm_idx] = new_top;
        }
    }

    /// Returns the `y` coordinate of the highest non-air block in the given
    /// column, or `None` if the column is entirely air.
    #[must_use]
    pub fn height_at(&self, x: usize, z: usize) -> Option<i32> {
        assert!(x < CHUNK_SIZE && z < CHUNK_SIZE, "local xz out of range");
        let h = self.heightmap[z * CHUNK_SIZE + x];
        (h >= 0).then_some(i32::from(h))
    }

    /// Returns the number of non-air blocks stored in the chunk.
    #[must_use]
    pub fn non_air_blocks(&self) -> u32 {
        self.non_air
    }

    /// Returns `true` if the chunk has been modified since the last call to
    /// [`Chunk::mark_clean`].
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Clears the dirty flag.
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Relight-pass stamp recorded at the last light-dirty fold.
    pub(crate) fn light_stamp(&self) -> u64 {
        self.light_stamp
    }

    /// Returns `true` if any column in the inclusive local rectangle
    /// `[x0..=x1] × [z0..=z1]` had its light opacity changed since the last
    /// relight-pass fold.
    pub(crate) fn light_dirty_in(&self, x0: usize, x1: usize, z0: usize, z1: usize) -> bool {
        if self.light_dirty == [0; LIGHT_DIRTY_WORDS] {
            return false;
        }
        for z in z0..=z1 {
            // Each z row is 16 consecutive bits; mask the x span in one op.
            let row = z * CHUNK_SIZE;
            let row_mask = (((1u32 << (x1 - x0 + 1)) - 1) as u64) << ((row + x0) % 64);
            if self.light_dirty[row / 64] & row_mask != 0 {
                return true;
            }
        }
        false
    }

    /// Folds the light-dirty mask into the stamp at the end of a relight
    /// pass: if any column was dirtied, records `stamp` (which invalidates
    /// all cache entries tagged at or before it) and clears the mask.
    pub(crate) fn fold_light_dirty(&mut self, stamp: u64) {
        if self.light_dirty != [0; LIGHT_DIRTY_WORDS] {
            self.light_stamp = stamp;
            self.light_dirty = [0; LIGHT_DIRTY_WORDS];
        }
    }

    /// Compacts the palette store (drops dead palette entries, narrows the
    /// packed index width). Substrate-only; cheap when already compact.
    pub fn compact_storage(&mut self) {
        self.store.gc();
    }

    /// Heap bytes owned by the block store (palette + packed indices).
    ///
    /// Compare with [`DENSE_BODY_BYTES`] to measure the palette win.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.store.storage_bytes()
    }

    /// Iterates over all non-air blocks as `(local_x, y, local_z, block)`.
    pub fn iter_non_air(&self) -> impl Iterator<Item = (usize, i32, usize, Block)> + '_ {
        self.store.iter_non_air().map(|(i, b)| {
            let x = i % CHUNK_SIZE;
            let z = (i / CHUNK_SIZE) % CHUNK_SIZE;
            let y = (i / (CHUNK_SIZE * CHUNK_SIZE)) as i32;
            (x, y, z, b)
        })
    }

    /// Counts blocks of the given kind in the chunk.
    #[must_use]
    pub fn count_kind(&self, kind: BlockKind) -> usize {
        self.store.count_kind(kind)
    }

    /// Approximate serialized size in bytes when sent as a chunk-data packet.
    ///
    /// The protocol sends 3 bytes per non-air block (position-in-chunk is
    /// implicit via run-length sections) plus a fixed header; this mirrors how
    /// real MLG protocols compress mostly-air chunks.
    #[must_use]
    pub fn network_size_bytes(&self) -> usize {
        64 + self.non_air as usize * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chunk() -> Chunk {
        Chunk::empty(ChunkPos::new(0, 0))
    }

    /// Asserts two chunks are observably identical: blocks, heightmap,
    /// non-air count, dirty flag and per-column light-dirty bits.
    fn assert_chunks_equivalent(a: &Chunk, b: &Chunk, ctx: &str) {
        assert_eq!(a.non_air_blocks(), b.non_air_blocks(), "non_air: {ctx}");
        assert_eq!(a.is_dirty(), b.is_dirty(), "dirty: {ctx}");
        for x in 0..CHUNK_SIZE {
            for z in 0..CHUNK_SIZE {
                assert_eq!(
                    a.height_at(x, z),
                    b.height_at(x, z),
                    "height {x},{z}: {ctx}"
                );
                assert_eq!(
                    a.light_dirty_in(x, x, z, z),
                    b.light_dirty_in(x, x, z, z),
                    "light_dirty {x},{z}: {ctx}"
                );
                for y in 0..WORLD_HEIGHT as i32 {
                    assert_eq!(
                        a.block(x, y, z),
                        b.block(x, y, z),
                        "block {x},{y},{z}: {ctx}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn fill_column_equals_per_block_set(seed in any::<u64>()) {
            // Random column fills (including out-of-bounds ranges that must
            // clamp, air fills, and refills) applied to one chunk via
            // `fill_column` and to a sibling via per-block `set_block`,
            // with `compact_storage` (palette gc) interleaved mid-sequence.
            let palette = [
                Block::AIR,
                Block::simple(BlockKind::Stone),
                Block::simple(BlockKind::Dirt),
                Block::simple(BlockKind::Grass),
                Block::simple(BlockKind::Water),
                Block::simple(BlockKind::Sand),
                Block::simple(BlockKind::Log),
                Block::with_state(BlockKind::RedstoneDust, 3),
            ];
            let mut a = chunk();
            let mut b = chunk();
            let mut s = seed;
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for op in 0..40u32 {
                let x = (next() % CHUNK_SIZE as u64) as usize;
                let z = (next() % CHUNK_SIZE as u64) as usize;
                // Biased toward in-bounds but can start below 0 / end above
                // the world height to exercise clamping.
                let y_lo = (next() % 140) as i32 - 6;
                let y_hi = y_lo + (next() % 70) as i32 - 4;
                let block = palette[(next() % palette.len() as u64) as usize];
                a.fill_column(x, z, y_lo, y_hi, block);
                for y in y_lo..=y_hi {
                    b.set_block(x, y, z, block);
                }
                if op % 9 == 8 {
                    a.compact_storage();
                    b.compact_storage();
                }
            }
            assert_chunks_equivalent(&a, &b, &format!("seed {seed}"));
        }

        #[test]
        fn fill_slab_equals_per_column_fill(seed in any::<u64>()) {
            // Random slab fills against 256 equivalent per-column fills:
            // blocks, heightmap, non-air and dirty must match exactly; the
            // slab's light-dirty mask is allowed to be a superset (it
            // over-invalidates conservatively, never under-invalidates).
            let palette = [
                Block::AIR,
                Block::simple(BlockKind::Stone),
                Block::simple(BlockKind::Dirt),
                Block::simple(BlockKind::Water),
                Block::with_state(BlockKind::RedstoneDust, 3),
            ];
            let mut a = chunk();
            let mut b = chunk();
            let mut s = seed;
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for op in 0..12u32 {
                let y_lo = (next() % 140) as i32 - 6;
                let y_hi = y_lo + (next() % 70) as i32 - 4;
                let block = palette[(next() % palette.len() as u64) as usize];
                a.fill_slab(y_lo, y_hi, block);
                for x in 0..CHUNK_SIZE {
                    for z in 0..CHUNK_SIZE {
                        b.fill_column(x, z, y_lo, y_hi, block);
                    }
                }
                if op % 5 == 4 {
                    a.compact_storage();
                    b.compact_storage();
                }
            }
            assert_eq!(a.non_air_blocks(), b.non_air_blocks(), "seed {seed}");
            assert_eq!(a.is_dirty(), b.is_dirty(), "seed {seed}");
            for x in 0..CHUNK_SIZE {
                for z in 0..CHUNK_SIZE {
                    assert_eq!(a.height_at(x, z), b.height_at(x, z), "{x},{z} seed {seed}");
                    if b.light_dirty_in(x, x, z, z) {
                        assert!(
                            a.light_dirty_in(x, x, z, z),
                            "slab must dirty every column per-column fills dirty \
                             ({x},{z} seed {seed})"
                        );
                    }
                    for y in 0..WORLD_HEIGHT as i32 {
                        assert_eq!(a.block(x, y, z), b.block(x, y, z), "{x},{y},{z} seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_chunk_is_air() {
        let c = chunk();
        assert_eq!(c.block(0, 0, 0), Block::AIR);
        assert_eq!(c.block(15, 127, 15), Block::AIR);
        assert_eq!(c.non_air_blocks(), 0);
        assert!(!c.is_dirty());
    }

    #[test]
    fn empty_chunk_owns_no_block_storage() {
        let c = chunk();
        assert_eq!(c.storage_bytes(), 0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut c = chunk();
        let b = Block::simple(BlockKind::Stone);
        assert_eq!(c.set_block(3, 10, 4, b), Block::AIR);
        assert_eq!(c.block(3, 10, 4), b);
        assert_eq!(c.non_air_blocks(), 1);
        assert!(c.is_dirty());
    }

    #[test]
    fn out_of_range_y_returns_air() {
        let mut c = chunk();
        assert_eq!(c.block(0, -1, 0), Block::AIR);
        assert_eq!(c.block(0, WORLD_HEIGHT as i32, 0), Block::AIR);
        assert_eq!(
            c.set_block(
                0,
                WORLD_HEIGHT as i32 + 5,
                0,
                Block::simple(BlockKind::Stone)
            ),
            Block::AIR
        );
        assert_eq!(c.non_air_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "local xz out of range")]
    fn out_of_range_x_panics() {
        let c = chunk();
        let _ = c.block(16, 0, 0);
    }

    #[test]
    fn heightmap_tracks_highest_block() {
        let mut c = chunk();
        assert_eq!(c.height_at(2, 2), None);
        c.set_block(2, 10, 2, Block::simple(BlockKind::Stone));
        c.set_block(2, 20, 2, Block::simple(BlockKind::Dirt));
        assert_eq!(c.height_at(2, 2), Some(20));
        // Removing the top block scans down to the next one.
        c.set_block(2, 20, 2, Block::AIR);
        assert_eq!(c.height_at(2, 2), Some(10));
        c.set_block(2, 10, 2, Block::AIR);
        assert_eq!(c.height_at(2, 2), None);
    }

    #[test]
    fn non_air_counter_stays_consistent() {
        let mut c = chunk();
        c.set_block(0, 0, 0, Block::simple(BlockKind::Stone));
        c.set_block(0, 0, 0, Block::simple(BlockKind::Dirt)); // replace, not add
        assert_eq!(c.non_air_blocks(), 1);
        c.set_block(0, 0, 0, Block::AIR);
        assert_eq!(c.non_air_blocks(), 0);
    }

    #[test]
    fn setting_same_block_does_not_dirty() {
        let mut c = chunk();
        c.set_block(1, 1, 1, Block::simple(BlockKind::Stone));
        c.mark_clean();
        c.set_block(1, 1, 1, Block::simple(BlockKind::Stone));
        assert!(!c.is_dirty());
    }

    #[test]
    fn iter_non_air_yields_placed_blocks() {
        let mut c = chunk();
        c.set_block(1, 2, 3, Block::simple(BlockKind::Stone));
        c.set_block(4, 5, 6, Block::simple(BlockKind::Sand));
        let blocks: Vec<_> = c.iter_non_air().collect();
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains(&(1, 2, 3, Block::simple(BlockKind::Stone))));
        assert!(blocks.contains(&(4, 5, 6, Block::simple(BlockKind::Sand))));
    }

    #[test]
    fn network_size_grows_with_blocks() {
        let mut c = chunk();
        let empty = c.network_size_bytes();
        for x in 0..8 {
            c.set_block(x, 0, 0, Block::simple(BlockKind::Stone));
        }
        assert_eq!(c.network_size_bytes(), empty + 8 * 3);
    }

    #[test]
    fn count_kind_counts_exactly() {
        let mut c = chunk();
        for i in 0..5 {
            c.set_block(i, 3, 0, Block::simple(BlockKind::Tnt));
        }
        c.set_block(0, 4, 0, Block::simple(BlockKind::Stone));
        assert_eq!(c.count_kind(BlockKind::Tnt), 5);
        assert_eq!(c.count_kind(BlockKind::Stone), 1);
    }

    #[test]
    fn opacity_changes_dirty_the_light_column_mask() {
        let mut c = chunk();
        assert!(!c.light_dirty_in(0, 15, 0, 15));
        c.set_block(3, 10, 4, Block::simple(BlockKind::Stone));
        assert!(c.light_dirty_in(3, 3, 4, 4));
        assert!(c.light_dirty_in(0, 15, 0, 15));
        assert!(!c.light_dirty_in(0, 2, 0, 15), "wrong column flagged");
        c.fold_light_dirty(7);
        assert!(!c.light_dirty_in(0, 15, 0, 15));
        assert_eq!(c.light_stamp(), 7);
    }

    #[test]
    fn state_only_changes_do_not_dirty_light() {
        let mut c = chunk();
        // Stone changes opacity (air 0 -> stone 15), so this fold restamps;
        // the torch itself is opacity 0 and leaves the mask untouched.
        c.set_block(4, 5, 5, Block::simple(BlockKind::Stone));
        c.set_block(5, 5, 5, Block::simple(BlockKind::RedstoneTorch));
        c.fold_light_dirty(1);
        // Torch toggling state: same kind, same opacity — no light dirt.
        c.set_block(5, 5, 5, Block::with_state(BlockKind::RedstoneTorch, 1));
        assert!(!c.light_dirty_in(0, 15, 0, 15));
        assert_eq!(c.light_stamp(), 1);
        c.fold_light_dirty(9);
        assert_eq!(c.light_stamp(), 1, "fold without dirt must not restamp");
    }

    #[test]
    fn generated_style_chunk_compresses_at_least_4x() {
        // A flat-generator-shaped column: bedrock, stone, dirt, grass.
        let mut c = chunk();
        for x in 0..CHUNK_SIZE {
            for z in 0..CHUNK_SIZE {
                c.set_block(x, 0, z, Block::simple(BlockKind::Bedrock));
                for y in 1..60 {
                    c.set_block(x, y, z, Block::simple(BlockKind::Stone));
                }
                for y in 60..63 {
                    c.set_block(x, y, z, Block::simple(BlockKind::Dirt));
                }
                c.set_block(x, 63, z, Block::simple(BlockKind::Grass));
            }
        }
        c.compact_storage();
        let ratio = DENSE_BODY_BYTES as f64 / c.storage_bytes() as f64;
        assert!(ratio >= 4.0, "palette ratio {ratio:.2} below 4x");
        // Storage must still read back exactly.
        assert_eq!(c.block(7, 30, 7), Block::simple(BlockKind::Stone));
        assert_eq!(c.block(7, 63, 7), Block::simple(BlockKind::Grass));
        assert_eq!(c.block(7, 64, 7), Block::AIR);
        assert_eq!(c.height_at(7, 7), Some(63));
    }
}
