//! Reusable per-tick scratch buffers (the tick "arena").
//!
//! Every tick of the terrain pipeline needs the same transient collections:
//! the pending/next-round cascade queues, the per-shard routing batches, the
//! relight position list, the relight miss-tracking buffers and a flood
//! scratch. Allocating them per tick (or worse, per cascade round) puts
//! allocator traffic on the hot path and — per the noise-floor methodology
//! in `docs/ARCHITECTURE.md` — adds wall-clock jitter that is pure harness
//! overhead, not modeled work.
//!
//! [`TickScratch`] owns all of them. The server constructs one per
//! `GameServer` and threads it through `TerrainSimulator::tick_with` /
//! `tick_sharded_with` and the relight passes, so a steady-state tick
//! recycles capacity instead of allocating. The buffers carry **no state**
//! across ticks — every consumer clears what it uses before use — so the
//! `_with` variants are bit-identical to their allocate-fresh wrappers.

use std::collections::{HashMap, VecDeque};

use crate::light::FloodScratch;
use crate::pos::BlockPos;
use crate::update::BlockUpdate;

/// Reusable buffers for one server's tick loop. See the module docs.
#[derive(Debug, Default)]
pub struct TickScratch {
    /// Cascade updates awaiting routing this round.
    pub(crate) pending: VecDeque<BlockUpdate>,
    /// Cascade updates produced for the next round.
    pub(crate) next_pending: VecDeque<BlockUpdate>,
    /// Per-shard routed update batches (index = shard).
    pub(crate) shard_batches: Vec<VecDeque<BlockUpdate>>,
    /// Boundary updates escalated to the serial phase.
    pub(crate) serial_batch: VecDeque<BlockUpdate>,
    /// Positions queued for relighting this tick.
    pub(crate) relight_positions: Vec<BlockPos>,
    /// Miss bookkeeping for the cached relight passes.
    pub(crate) light: LightPassScratch,
    /// Visited bitmask + BFS queue for serial-path light floods.
    pub(crate) flood: FloodScratch,
}

impl TickScratch {
    /// Creates an empty scratch. One instance serves any number of ticks.
    #[must_use]
    pub fn new() -> Self {
        TickScratch::default()
    }
}

/// Miss-tracking buffers for one cached relight pass: the deduplicated miss
/// list (with per-position multiplicities, since a position can be relit
/// several times in one pass) and the index that deduplicates it.
#[derive(Debug, Default)]
pub(crate) struct LightPassScratch {
    /// Position → slot in `misses` (probed, never iterated).
    pub(crate) miss_index: HashMap<BlockPos, usize>,
    /// Unique positions that missed the relight cache, in first-seen order.
    pub(crate) misses: Vec<BlockPos>,
    /// How many times each miss position occurred in the pass input.
    pub(crate) miss_counts: Vec<u32>,
}

impl LightPassScratch {
    pub(crate) fn new() -> Self {
        LightPassScratch::default()
    }

    pub(crate) fn clear(&mut self) {
        self.miss_index.clear();
        self.misses.clear();
        self.miss_counts.clear();
    }
}
