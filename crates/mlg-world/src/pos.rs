//! Block and chunk coordinates.
//!
//! MLG worlds address individual blocks by integer coordinates and group them
//! into vertical chunk columns of [`crate::CHUNK_SIZE`]×[`crate::CHUNK_SIZE`]
//! blocks. This module provides the coordinate types and the conversions
//! between them.

use serde::{Deserialize, Serialize};

use crate::chunk::CHUNK_SIZE;

/// Position of a single block in the world, in absolute block coordinates.
///
/// `y` is the vertical axis (height); `x` and `z` span the horizontal plane.
///
/// # Example
///
/// ```
/// use mlg_world::BlockPos;
///
/// let p = BlockPos::new(17, 64, -3);
/// assert_eq!(p.chunk().x, 1);
/// assert_eq!(p.chunk().z, -1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockPos {
    /// East–west coordinate.
    pub x: i32,
    /// Vertical coordinate (height).
    pub y: i32,
    /// North–south coordinate.
    pub z: i32,
}

impl BlockPos {
    /// The origin block position `(0, 0, 0)`.
    pub const ORIGIN: BlockPos = BlockPos { x: 0, y: 0, z: 0 };

    /// Creates a new block position.
    #[must_use]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        BlockPos { x, y, z }
    }

    /// Returns the position of the chunk column containing this block.
    #[must_use]
    pub fn chunk(self) -> ChunkPos {
        ChunkPos {
            x: self.x.div_euclid(CHUNK_SIZE as i32),
            z: self.z.div_euclid(CHUNK_SIZE as i32),
        }
    }

    /// Returns the block coordinates relative to the containing chunk,
    /// `(local_x, y, local_z)` with `local_x, local_z` in `0..CHUNK_SIZE`.
    #[must_use]
    pub fn local(self) -> (usize, i32, usize) {
        (
            self.x.rem_euclid(CHUNK_SIZE as i32) as usize,
            self.y,
            self.z.rem_euclid(CHUNK_SIZE as i32) as usize,
        )
    }

    /// Returns the position offset by the given deltas.
    #[must_use]
    pub const fn offset(self, dx: i32, dy: i32, dz: i32) -> Self {
        BlockPos::new(self.x + dx, self.y + dy, self.z + dz)
    }

    /// Returns the position directly above this one.
    #[must_use]
    pub const fn up(self) -> Self {
        self.offset(0, 1, 0)
    }

    /// Returns the position directly below this one.
    #[must_use]
    pub const fn down(self) -> Self {
        self.offset(0, -1, 0)
    }

    /// Returns the six face-adjacent neighbour positions.
    #[must_use]
    pub fn neighbors(self) -> [BlockPos; 6] {
        [
            self.offset(1, 0, 0),
            self.offset(-1, 0, 0),
            self.offset(0, 1, 0),
            self.offset(0, -1, 0),
            self.offset(0, 0, 1),
            self.offset(0, 0, -1),
        ]
    }

    /// Returns the four horizontally adjacent neighbour positions.
    #[must_use]
    pub fn horizontal_neighbors(self) -> [BlockPos; 4] {
        [
            self.offset(1, 0, 0),
            self.offset(-1, 0, 0),
            self.offset(0, 0, 1),
            self.offset(0, 0, -1),
        ]
    }

    /// Manhattan (taxicab) distance to another block position.
    #[must_use]
    pub fn manhattan_distance(self, other: BlockPos) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y) + self.z.abs_diff(other.z)
    }

    /// Squared Euclidean distance to another block position.
    #[must_use]
    pub fn distance_squared(self, other: BlockPos) -> u64 {
        let dx = i64::from(self.x - other.x);
        let dy = i64::from(self.y - other.y);
        let dz = i64::from(self.z - other.z);
        (dx * dx + dy * dy + dz * dz) as u64
    }

    /// Horizontal (x/z plane) squared distance to another block position.
    #[must_use]
    pub fn horizontal_distance_squared(self, other: BlockPos) -> u64 {
        let dx = i64::from(self.x - other.x);
        let dz = i64::from(self.z - other.z);
        (dx * dx + dz * dz) as u64
    }
}

impl std::fmt::Display for BlockPos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<(i32, i32, i32)> for BlockPos {
    fn from((x, y, z): (i32, i32, i32)) -> Self {
        BlockPos::new(x, y, z)
    }
}

/// Position of a chunk column in the horizontal chunk grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkPos {
    /// East–west chunk coordinate.
    pub x: i32,
    /// North–south chunk coordinate.
    pub z: i32,
}

impl ChunkPos {
    /// Creates a new chunk position.
    #[must_use]
    pub const fn new(x: i32, z: i32) -> Self {
        ChunkPos { x, z }
    }

    /// Returns the block position of this chunk's minimum corner at `y = 0`.
    #[must_use]
    pub fn origin_block(self) -> BlockPos {
        BlockPos::new(self.x * CHUNK_SIZE as i32, 0, self.z * CHUNK_SIZE as i32)
    }

    /// Returns the Chebyshev distance (in chunks) to another chunk position.
    ///
    /// Used for view-distance checks: a chunk is visible to a player when the
    /// Chebyshev distance between their chunk positions is within the view
    /// distance.
    #[must_use]
    pub fn chebyshev_distance(self, other: ChunkPos) -> u32 {
        self.x.abs_diff(other.x).max(self.z.abs_diff(other.z))
    }

    /// Returns all chunk positions within `radius` (Chebyshev) of this one,
    /// including this one.
    #[must_use]
    pub fn within_radius(self, radius: u32) -> Vec<ChunkPos> {
        let r = radius as i32;
        let mut out = Vec::with_capacity(((2 * r + 1) * (2 * r + 1)) as usize);
        for dx in -r..=r {
            for dz in -r..=r {
                out.push(ChunkPos::new(self.x + dx, self.z + dz));
            }
        }
        out
    }
}

impl std::fmt::Display for ChunkPos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.x, self.z)
    }
}

impl From<(i32, i32)> for ChunkPos {
    fn from((x, z): (i32, i32)) -> Self {
        ChunkPos::new(x, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_to_chunk_positive() {
        assert_eq!(BlockPos::new(0, 0, 0).chunk(), ChunkPos::new(0, 0));
        assert_eq!(BlockPos::new(15, 0, 15).chunk(), ChunkPos::new(0, 0));
        assert_eq!(BlockPos::new(16, 0, 31).chunk(), ChunkPos::new(1, 1));
    }

    #[test]
    fn block_to_chunk_negative() {
        assert_eq!(BlockPos::new(-1, 0, -1).chunk(), ChunkPos::new(-1, -1));
        assert_eq!(BlockPos::new(-16, 0, -17).chunk(), ChunkPos::new(-1, -2));
    }

    #[test]
    fn local_coordinates_are_in_range() {
        for x in [-33, -16, -1, 0, 1, 15, 16, 47] {
            for z in [-33, -16, -1, 0, 1, 15, 16, 47] {
                let (lx, _, lz) = BlockPos::new(x, 5, z).local();
                assert!(lx < CHUNK_SIZE, "x={x} -> {lx}");
                assert!(lz < CHUNK_SIZE, "z={z} -> {lz}");
            }
        }
    }

    #[test]
    fn local_matches_chunk_origin() {
        let p = BlockPos::new(-7, 12, 39);
        let chunk = p.chunk();
        let (lx, y, lz) = p.local();
        let origin = chunk.origin_block();
        assert_eq!(origin.x + lx as i32, p.x);
        assert_eq!(origin.z + lz as i32, p.z);
        assert_eq!(y, p.y);
    }

    #[test]
    fn neighbors_are_adjacent() {
        let p = BlockPos::new(3, 4, 5);
        for n in p.neighbors() {
            assert_eq!(p.manhattan_distance(n), 1);
        }
        assert_eq!(p.neighbors().len(), 6);
    }

    #[test]
    fn horizontal_neighbors_stay_on_plane() {
        let p = BlockPos::new(3, 4, 5);
        for n in p.horizontal_neighbors() {
            assert_eq!(n.y, p.y);
            assert_eq!(p.manhattan_distance(n), 1);
        }
    }

    #[test]
    fn distances() {
        let a = BlockPos::new(0, 0, 0);
        let b = BlockPos::new(3, 4, 0);
        assert_eq!(a.distance_squared(b), 25);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.horizontal_distance_squared(b), 9);
    }

    #[test]
    fn chunk_radius_includes_center() {
        let c = ChunkPos::new(2, -3);
        let within = c.within_radius(2);
        assert_eq!(within.len(), 25);
        assert!(within.contains(&c));
        for other in &within {
            assert!(c.chebyshev_distance(*other) <= 2);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockPos::new(1, 2, 3).to_string(), "(1, 2, 3)");
        assert_eq!(ChunkPos::new(-1, 4).to_string(), "[-1, 4]");
    }
}
