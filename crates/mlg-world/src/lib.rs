//! Voxel world substrate for the Meterstick Minecraft-like-game (MLG) simulator.
//!
//! This crate implements the *terrain* part of the operational model described
//! in Section 2 of the Meterstick paper (Eickhoff, Donkervliet, Iosup,
//! ISPASS 2022): a modifiable block world split into lazily generated chunks,
//! together with the terrain-simulation rules that make MLG workloads unique —
//! block physics (gravity-affected blocks), fluid flow, dynamic lighting,
//! plant growth and redstone-like signal simulation used by *simulated
//! constructs* such as resource farms and lag machines.
//!
//! The crate is deliberately independent from wall-clock time: every
//! simulation step reports how much abstract *work* it performed
//! ([`sim::TerrainTickReport`]), which the deployment-environment simulator
//! (`cloud-sim`) later converts into milliseconds.
//!
//! The [`shard`] module partitions the loaded world for the sharded tick
//! pipeline: either static 4-chunk x-stripes or an adaptive 2D region
//! quadtree whose leaves split and merge between ticks from per-shard
//! load reports ([`shard::ShardLoadReport`]) under a hysteresis rule —
//! both partitions are pure functions of their inputs, keeping the
//! pipeline bit-identical at any worker-thread count. The [`pool`] module
//! provides the execution substrate: a persistent [`TickWorkerPool`] of
//! parked workers, spawned once per server and reused by every parallel
//! phase of every tick (per-phase scoped threads remain as the fallback
//! and bench baseline). The system-wide map — stage graph, determinism
//! contract, cost model, measured pool-vs-scoped numbers — lives in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use mlg_world::{World, BlockPos, Block, BlockKind};
//! use mlg_world::generation::FlatGenerator;
//!
//! let mut world = World::new(Box::new(FlatGenerator::grassland()), 42);
//! // Chunks are generated lazily on first access.
//! let pos = BlockPos::new(8, 64, 8);
//! world.set_block(pos, Block::simple(BlockKind::Stone));
//! assert_eq!(world.block(pos).kind(), BlockKind::Stone);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod chunk;
pub mod fluid;
pub mod generation;
pub mod growth;
pub mod light;
pub mod palette;
pub mod physics;
pub mod pool;
pub mod pos;
pub mod redstone;
pub mod region;
pub mod scratch;
pub mod shard;
pub mod sim;
pub mod update;
pub mod world;

pub use block::{Block, BlockKind};
pub use chunk::{Chunk, CHUNK_SIZE, DENSE_BODY_BYTES, WORLD_HEIGHT};
pub use palette::PaletteStore;
pub use pool::{PoolScope, TickWorkerPool};
pub use pos::{BlockPos, ChunkPos};
pub use region::Region;
pub use scratch::TickScratch;
pub use shard::{BlockReader, FrozenWorld, ShardLoadReport, ShardMap, TerrainView, TickPipeline};
pub use sim::{ShardedTerrainTick, TerrainSimulator, TerrainTickReport};
pub use update::{BlockUpdate, UpdateKind};
pub use world::{World, WorldSnapshot};

/// The fixed duration of one game tick at the intended 20 Hz rate, in
/// milliseconds.
///
/// Section 2.1 of the paper: "In MLGs, this frequency is typically set to
/// 20 Hz, or 50 ms per tick."
pub const TICK_MS: f64 = 50.0;

/// Number of game ticks per simulated second at the intended rate.
pub const TICKS_PER_SECOND: u64 = 20;
