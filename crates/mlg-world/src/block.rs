//! Block kinds and per-block state.
//!
//! Blocks are the atoms of the modifiable MLG terrain (Section 2.2.2 of the
//! paper). Each block is a compact value type: a [`BlockKind`] plus one byte
//! of kind-specific state (redstone power level, fluid level, growth stage,
//! fuse progress, …).

use serde::{Deserialize, Serialize};

/// The kind of a block.
///
/// The set of kinds is intentionally a superset of what the Meterstick
/// workload worlds need: natural terrain blocks, fluids, gravity-affected
/// blocks, plants, and the redstone-like components used by *simulated
/// constructs* (resource farms, item sorters, lag machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum BlockKind {
    /// Empty space.
    #[default]
    Air,
    /// Generic stone; the most common underground block.
    Stone,
    /// Cobblestone, produced when water meets lava in stone farms.
    Cobblestone,
    /// Dirt below the surface layer.
    Dirt,
    /// Grass-covered dirt at the surface.
    Grass,
    /// Sand: gravity-affected.
    Sand,
    /// Gravel: gravity-affected.
    Gravel,
    /// Tree trunk.
    Log,
    /// Tree canopy.
    Leaves,
    /// Bedrock: indestructible bottom layer.
    Bedrock,
    /// Water source or flowing water; state = fluid level (0 = source).
    Water,
    /// Lava source or flowing lava; state = fluid level (0 = source).
    Lava,
    /// A placed TNT block; when ignited it is replaced by a primed TNT entity.
    Tnt,
    /// Obsidian, created when lava sources are flooded.
    Obsidian,
    /// Planks / generic building block.
    Planks,
    /// Glass (transparent, non-full light attenuation).
    Glass,
    /// Redstone dust wire; state = power level 0–15.
    RedstoneDust,
    /// Redstone torch; state = 1 when lit.
    RedstoneTorch,
    /// Redstone repeater; state bits: low nibble = remaining delay, bit 4 = powered.
    Repeater,
    /// Redstone comparator (treated as a unit-delay powered component).
    Comparator,
    /// Observer block: emits a pulse when the observed block changes.
    Observer,
    /// Piston body; state = 1 when extended.
    Piston,
    /// Sticky piston body; state = 1 when extended.
    StickyPiston,
    /// A redstone block: constant power source.
    RedstoneBlock,
    /// Lever; state = 1 when on.
    Lever,
    /// Hopper: collects and transfers item entities (used by item sorters).
    Hopper,
    /// Chest: item storage endpoint for farms and sorters.
    Chest,
    /// Dispenser/dropper: ejects items or places blocks when powered.
    Dispenser,
    /// Dried-out farmland or farmland; state = 1 when hydrated.
    Farmland,
    /// Wheat crop; state = growth stage 0–7.
    Wheat,
    /// Kelp plant; state = current height of the kelp stalk at this block.
    Kelp,
    /// Sugar cane; state = growth stage.
    SugarCane,
    /// Sapling that may grow into a tree; state = growth stage.
    Sapling,
    /// Magma block used at the bottom of kelp/entity farms.
    Magma,
    /// Slab/half block used in farm roofs (spawnable surface control).
    Slab,
    /// Spawner-attracting dark platform marker used by entity farms.
    SpawningPlatform,
}

impl BlockKind {
    /// Returns `true` for blocks that entities and players collide with.
    #[must_use]
    pub fn is_solid(self) -> bool {
        !matches!(
            self,
            BlockKind::Air
                | BlockKind::Water
                | BlockKind::Lava
                | BlockKind::RedstoneDust
                | BlockKind::RedstoneTorch
                | BlockKind::Lever
                | BlockKind::Wheat
                | BlockKind::Kelp
                | BlockKind::SugarCane
                | BlockKind::Sapling
        )
    }

    /// Returns `true` for fluid blocks (water and lava).
    #[must_use]
    pub fn is_fluid(self) -> bool {
        matches!(self, BlockKind::Water | BlockKind::Lava)
    }

    /// Returns `true` for blocks pulled down by gravity when unsupported.
    #[must_use]
    pub fn is_gravity_affected(self) -> bool {
        matches!(self, BlockKind::Sand | BlockKind::Gravel)
    }

    /// Returns `true` for blocks that participate in redstone-like signal
    /// simulation.
    #[must_use]
    pub fn is_redstone_component(self) -> bool {
        matches!(
            self,
            BlockKind::RedstoneDust
                | BlockKind::RedstoneTorch
                | BlockKind::Repeater
                | BlockKind::Comparator
                | BlockKind::Observer
                | BlockKind::Piston
                | BlockKind::StickyPiston
                | BlockKind::RedstoneBlock
                | BlockKind::Lever
                | BlockKind::Dispenser
                | BlockKind::Hopper
        )
    }

    /// Returns `true` for plant blocks that grow via random ticks.
    #[must_use]
    pub fn is_plant(self) -> bool {
        matches!(
            self,
            BlockKind::Wheat | BlockKind::Kelp | BlockKind::SugarCane | BlockKind::Sapling
        )
    }

    /// Returns the amount of block light emitted by this block kind (0–15).
    #[must_use]
    pub fn light_emission(self) -> u8 {
        match self {
            BlockKind::Lava | BlockKind::Magma => 15,
            BlockKind::RedstoneTorch => 7,
            _ => 0,
        }
    }

    /// Returns how much light is attenuated when passing through this block
    /// (15 = fully opaque, 0 = fully transparent).
    #[must_use]
    pub fn light_opacity(self) -> u8 {
        if self == BlockKind::Air || self == BlockKind::Glass || !self.is_solid() {
            if self == BlockKind::Water {
                2
            } else {
                0
            }
        } else if matches!(self, BlockKind::Leaves | BlockKind::Slab) {
            1
        } else {
            15
        }
    }

    /// Returns `true` if this kind can be destroyed by an explosion.
    #[must_use]
    pub fn is_destructible(self) -> bool {
        !matches!(
            self,
            BlockKind::Bedrock | BlockKind::Obsidian | BlockKind::Air
        )
    }

    /// Returns `true` if entities can be spawned standing on this block kind.
    #[must_use]
    pub fn is_spawnable_surface(self) -> bool {
        self.is_solid() && !matches!(self, BlockKind::Glass | BlockKind::Slab | BlockKind::Magma)
    }

    /// Returns a short human-readable name for this block kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BlockKind::Air => "air",
            BlockKind::Stone => "stone",
            BlockKind::Cobblestone => "cobblestone",
            BlockKind::Dirt => "dirt",
            BlockKind::Grass => "grass",
            BlockKind::Sand => "sand",
            BlockKind::Gravel => "gravel",
            BlockKind::Log => "log",
            BlockKind::Leaves => "leaves",
            BlockKind::Bedrock => "bedrock",
            BlockKind::Water => "water",
            BlockKind::Lava => "lava",
            BlockKind::Tnt => "tnt",
            BlockKind::Obsidian => "obsidian",
            BlockKind::Planks => "planks",
            BlockKind::Glass => "glass",
            BlockKind::RedstoneDust => "redstone_dust",
            BlockKind::RedstoneTorch => "redstone_torch",
            BlockKind::Repeater => "repeater",
            BlockKind::Comparator => "comparator",
            BlockKind::Observer => "observer",
            BlockKind::Piston => "piston",
            BlockKind::StickyPiston => "sticky_piston",
            BlockKind::RedstoneBlock => "redstone_block",
            BlockKind::Lever => "lever",
            BlockKind::Hopper => "hopper",
            BlockKind::Chest => "chest",
            BlockKind::Dispenser => "dispenser",
            BlockKind::Farmland => "farmland",
            BlockKind::Wheat => "wheat",
            BlockKind::Kelp => "kelp",
            BlockKind::SugarCane => "sugar_cane",
            BlockKind::Sapling => "sapling",
            BlockKind::Magma => "magma",
            BlockKind::Slab => "slab",
            BlockKind::SpawningPlatform => "spawning_platform",
        }
    }

    /// Returns a stable numeric identifier used by the network protocol.
    #[must_use]
    pub fn protocol_id(self) -> u16 {
        match self {
            BlockKind::Air => 0,
            BlockKind::Stone => 1,
            BlockKind::Cobblestone => 2,
            BlockKind::Dirt => 3,
            BlockKind::Grass => 4,
            BlockKind::Sand => 5,
            BlockKind::Gravel => 6,
            BlockKind::Log => 7,
            BlockKind::Leaves => 8,
            BlockKind::Bedrock => 9,
            BlockKind::Water => 10,
            BlockKind::Lava => 11,
            BlockKind::Tnt => 12,
            BlockKind::Obsidian => 13,
            BlockKind::Planks => 14,
            BlockKind::Glass => 15,
            BlockKind::RedstoneDust => 16,
            BlockKind::RedstoneTorch => 17,
            BlockKind::Repeater => 18,
            BlockKind::Comparator => 19,
            BlockKind::Observer => 20,
            BlockKind::Piston => 21,
            BlockKind::StickyPiston => 22,
            BlockKind::RedstoneBlock => 23,
            BlockKind::Lever => 24,
            BlockKind::Hopper => 25,
            BlockKind::Chest => 26,
            BlockKind::Dispenser => 27,
            BlockKind::Farmland => 28,
            BlockKind::Wheat => 29,
            BlockKind::Kelp => 30,
            BlockKind::SugarCane => 31,
            BlockKind::Sapling => 32,
            BlockKind::Magma => 33,
            BlockKind::Slab => 34,
            BlockKind::SpawningPlatform => 35,
        }
    }

    /// All block kinds, in protocol-id order. Useful for property tests.
    #[must_use]
    pub fn all() -> &'static [BlockKind] {
        &[
            BlockKind::Air,
            BlockKind::Stone,
            BlockKind::Cobblestone,
            BlockKind::Dirt,
            BlockKind::Grass,
            BlockKind::Sand,
            BlockKind::Gravel,
            BlockKind::Log,
            BlockKind::Leaves,
            BlockKind::Bedrock,
            BlockKind::Water,
            BlockKind::Lava,
            BlockKind::Tnt,
            BlockKind::Obsidian,
            BlockKind::Planks,
            BlockKind::Glass,
            BlockKind::RedstoneDust,
            BlockKind::RedstoneTorch,
            BlockKind::Repeater,
            BlockKind::Comparator,
            BlockKind::Observer,
            BlockKind::Piston,
            BlockKind::StickyPiston,
            BlockKind::RedstoneBlock,
            BlockKind::Lever,
            BlockKind::Hopper,
            BlockKind::Chest,
            BlockKind::Dispenser,
            BlockKind::Farmland,
            BlockKind::Wheat,
            BlockKind::Kelp,
            BlockKind::SugarCane,
            BlockKind::Sapling,
            BlockKind::Magma,
            BlockKind::Slab,
            BlockKind::SpawningPlatform,
        ]
    }

    /// Looks a block kind up by its protocol identifier.
    #[must_use]
    pub fn from_protocol_id(id: u16) -> Option<BlockKind> {
        BlockKind::all().get(id as usize).copied()
    }
}

impl std::fmt::Display for BlockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A block: a kind plus one byte of kind-specific state.
///
/// The meaning of `state` depends on the kind:
/// * redstone dust — power level 0–15,
/// * fluids — flow level (0 = source, 1–7 flowing),
/// * crops/kelp/saplings — growth stage,
/// * repeaters — remaining delay and powered bit,
/// * levers, torches, pistons — on/extended flag.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Block {
    kind: BlockKind,
    state: u8,
}

impl Block {
    /// The air block.
    pub const AIR: Block = Block {
        kind: BlockKind::Air,
        state: 0,
    };

    /// Creates a block of the given kind with zeroed state.
    #[must_use]
    pub const fn simple(kind: BlockKind) -> Self {
        Block { kind, state: 0 }
    }

    /// Creates a block of the given kind with explicit state.
    #[must_use]
    pub const fn with_state(kind: BlockKind, state: u8) -> Self {
        Block { kind, state }
    }

    /// Returns the block kind.
    #[must_use]
    pub const fn kind(self) -> BlockKind {
        self.kind
    }

    /// Returns the raw state byte.
    #[must_use]
    pub const fn state(self) -> u8 {
        self.state
    }

    /// Returns a copy of this block with the state byte replaced.
    #[must_use]
    pub const fn set_state(self, state: u8) -> Self {
        Block {
            kind: self.kind,
            state,
        }
    }

    /// Returns `true` if this block is air.
    #[must_use]
    pub const fn is_air(self) -> bool {
        matches!(self.kind, BlockKind::Air)
    }

    /// Returns `true` for blocks that entities and players collide with.
    #[must_use]
    pub fn is_solid(self) -> bool {
        self.kind.is_solid()
    }

    /// Returns the redstone power this block currently outputs (0–15).
    #[must_use]
    pub fn power(self) -> u8 {
        match self.kind {
            BlockKind::RedstoneBlock => 15,
            BlockKind::RedstoneDust => self.state.min(15),
            BlockKind::RedstoneTorch | BlockKind::Lever if self.state != 0 => 15,
            BlockKind::Repeater | BlockKind::Comparator | BlockKind::Observer
                if self.state & 0b1_0000 != 0 =>
            {
                15
            }
            _ => 0,
        }
    }
}

impl std::fmt::Display for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.state == 0 {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "{}[{}]", self.kind, self.state)
        }
    }
}

impl From<BlockKind> for Block {
    fn from(kind: BlockKind) -> Self {
        Block::simple(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_id_roundtrip() {
        for &kind in BlockKind::all() {
            assert_eq!(BlockKind::from_protocol_id(kind.protocol_id()), Some(kind));
        }
    }

    #[test]
    fn protocol_ids_are_unique_and_dense() {
        let all = BlockKind::all();
        for (i, &kind) in all.iter().enumerate() {
            assert_eq!(kind.protocol_id() as usize, i);
        }
        assert_eq!(BlockKind::from_protocol_id(all.len() as u16), None);
    }

    #[test]
    fn air_is_not_solid() {
        assert!(!BlockKind::Air.is_solid());
        assert!(Block::AIR.is_air());
        assert!(!Block::AIR.is_solid());
    }

    #[test]
    fn fluids_and_gravity() {
        assert!(BlockKind::Water.is_fluid());
        assert!(BlockKind::Lava.is_fluid());
        assert!(!BlockKind::Stone.is_fluid());
        assert!(BlockKind::Sand.is_gravity_affected());
        assert!(BlockKind::Gravel.is_gravity_affected());
        assert!(!BlockKind::Stone.is_gravity_affected());
    }

    #[test]
    fn redstone_component_classification() {
        assert!(BlockKind::RedstoneDust.is_redstone_component());
        assert!(BlockKind::Observer.is_redstone_component());
        assert!(BlockKind::Hopper.is_redstone_component());
        assert!(!BlockKind::Stone.is_redstone_component());
    }

    #[test]
    fn power_levels() {
        assert_eq!(Block::simple(BlockKind::RedstoneBlock).power(), 15);
        assert_eq!(Block::with_state(BlockKind::RedstoneDust, 7).power(), 7);
        assert_eq!(Block::with_state(BlockKind::RedstoneDust, 200).power(), 15);
        assert_eq!(Block::with_state(BlockKind::Lever, 1).power(), 15);
        assert_eq!(Block::with_state(BlockKind::Lever, 0).power(), 0);
        assert_eq!(Block::with_state(BlockKind::Repeater, 0b1_0000).power(), 15);
        assert_eq!(Block::with_state(BlockKind::Repeater, 0b0_0011).power(), 0);
        assert_eq!(Block::simple(BlockKind::Stone).power(), 0);
    }

    #[test]
    fn light_properties() {
        assert_eq!(BlockKind::Lava.light_emission(), 15);
        assert_eq!(BlockKind::Stone.light_emission(), 0);
        assert_eq!(BlockKind::Stone.light_opacity(), 15);
        assert_eq!(BlockKind::Air.light_opacity(), 0);
        assert_eq!(BlockKind::Water.light_opacity(), 2);
        assert_eq!(BlockKind::Leaves.light_opacity(), 1);
    }

    #[test]
    fn bedrock_is_indestructible() {
        assert!(!BlockKind::Bedrock.is_destructible());
        assert!(BlockKind::Stone.is_destructible());
        assert!(!BlockKind::Air.is_destructible());
    }

    #[test]
    fn display_includes_state() {
        assert_eq!(Block::simple(BlockKind::Stone).to_string(), "stone");
        assert_eq!(
            Block::with_state(BlockKind::Wheat, 3).to_string(),
            "wheat[3]"
        );
    }

    #[test]
    fn spawnable_surfaces() {
        assert!(BlockKind::Stone.is_spawnable_surface());
        assert!(!BlockKind::Glass.is_spawnable_surface());
        assert!(!BlockKind::Water.is_spawnable_surface());
    }
}
