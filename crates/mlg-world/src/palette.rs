//! Palette-compressed block storage for chunk columns.
//!
//! A dense chunk body stores 32,768 two-byte [`Block`]s (64 KB per column)
//! even though a typical generated column contains fewer than ten distinct
//! block values. The palette store keeps one copy of each distinct value in
//! a small `palette` vector and packs a per-entry *palette index* into a
//! `u64` bit array instead: 1/2/4/8 bits per entry while the palette grows
//! (auto-widening steps up through power-of-two widths when the palette
//! overflows the current one), and [`PaletteStore::gc`] compacts back down
//! to the narrowest width that still addresses every live palette entry.
//!
//! Invariants:
//!
//! * a materialized store always keeps `palette[0] == Block::AIR`, so an
//!   all-zero index word means "64/bits consecutive air blocks" and scans
//!   can skip it wholesale;
//! * `bits == 0` means the store is an unmaterialized all-air column that
//!   owns no index words at all (`Chunk::empty` is O(1));
//! * an entry never straddles a word boundary: each `u64` word holds
//!   `64 / bits` entries, with any remainder bits unused (and kept zero)
//!   for the `gc`-compacted widths that do not divide 64.
//!
//! The store is pure substrate: every observable read goes through
//! [`PaletteStore::get`], which returns exactly what a dense `Vec<Block>`
//! at the same logical state would, so the modeled simulation cannot tell
//! the representations apart.

use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockKind};
use crate::chunk::BLOCKS_PER_CHUNK;

/// Widths the auto-widening path steps through while a palette grows.
/// `gc` may compact to intermediate widths (3, 5, 6, …); growth always
/// jumps to the next power of two so a generation-time cascade of inserts
/// repacks at most four times per chunk.
const WIDEN_LADDER: [u8; 5] = [1, 2, 4, 8, 16];

/// Narrowest width whose index space addresses `len` palette entries.
fn minimal_bits(len: usize) -> u8 {
    (1..=16u8)
        .find(|&b| (1usize << b) >= len)
        .expect("palette cannot exceed 2^16 distinct blocks")
}

/// A palette-compressed array of `BLOCKS_PER_CHUNK` (16×16×128) blocks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PaletteStore {
    /// Distinct block values; index 0 is always [`Block::AIR`] once
    /// materialized. Entries whose refcount drops to zero stay in place
    /// (for slot reuse) until [`PaletteStore::gc`] compacts them away.
    palette: Vec<Block>,
    /// Number of stored entries referencing each palette slot.
    refs: Vec<u32>,
    /// Bits per packed index; 0 = unmaterialized all-air store.
    bits: u8,
    /// Count of dead palette slots (`refs == 0`, excluding slot 0),
    /// maintained so `gc` can no-op cheaply on already-compact stores.
    dead: u32,
    /// The packed index words.
    data: Vec<u64>,
}

impl PaletteStore {
    /// Creates an all-air store without allocating index storage.
    #[must_use]
    pub fn new_air() -> Self {
        PaletteStore::default()
    }

    fn mask(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    fn capacity(&self) -> usize {
        1usize << self.bits
    }

    fn index_at(&self, i: usize) -> usize {
        let epw = (64 / self.bits) as usize;
        let shift = (i % epw) * self.bits as usize;
        ((self.data[i / epw] >> shift) & self.mask()) as usize
    }

    fn write_index(&mut self, i: usize, idx: usize) {
        let epw = (64 / self.bits) as usize;
        let word = i / epw;
        let shift = (i % epw) * self.bits as usize;
        let mask = self.mask();
        self.data[word] = (self.data[word] & !(mask << shift)) | ((idx as u64) << shift);
    }

    /// Lays out the 1-bit index array for the first non-air write.
    fn materialize(&mut self) {
        self.bits = 1;
        self.data = vec![0u64; BLOCKS_PER_CHUNK / 64];
        self.palette = vec![Block::AIR];
        self.refs = vec![BLOCKS_PER_CHUNK as u32];
        self.dead = 0;
    }

    /// Repacks the index array at `new_bits` per entry, optionally applying
    /// a palette-index remapping (used by `gc`; `remap[old] == new`).
    fn repack(&mut self, new_bits: u8, remap: Option<&[usize]>) {
        let old_bits = self.bits as usize;
        let old_epw = 64 / old_bits;
        let old_mask = self.mask();
        let new_epw = (64 / new_bits) as usize;
        let new_bits_u = new_bits as usize;
        let mut new_data = vec![0u64; BLOCKS_PER_CHUNK.div_ceil(new_epw)];
        // Walk both layouts with running word/shift cursors instead of
        // dividing by the (runtime-valued) entries-per-word each entry,
        // and skip all-zero old words wholesale: an all-zero word is a run
        // of air entries and air's palette slot is pinned at 0 under any
        // remap, so it contributes nothing to the (zeroed) new layout.
        // Repack runs over all 32k entries on every widen/narrow — during
        // generation the store widens while still mostly air, so these two
        // short-cuts are what keep the widening cascade off the hot path.
        let (mut nw, mut ns, mut nc) = (0usize, 0usize, 0usize);
        let mut base = 0usize;
        for ow in 0..self.data.len() {
            let in_word = old_epw.min(BLOCKS_PER_CHUNK - base);
            let w = self.data[ow];
            if w == 0 {
                nc += in_word;
                nw += nc / new_epw;
                nc %= new_epw;
                ns = nc * new_bits_u;
            } else {
                let mut os = 0;
                for _ in 0..in_word {
                    let mut idx = ((w >> os) & old_mask) as usize;
                    if let Some(map) = remap {
                        idx = map[idx];
                    }
                    if idx != 0 {
                        new_data[nw] |= (idx as u64) << ns;
                    }
                    os += old_bits;
                    nc += 1;
                    if nc == new_epw {
                        nc = 0;
                        ns = 0;
                        nw += 1;
                    } else {
                        ns += new_bits_u;
                    }
                }
            }
            base += in_word;
        }
        self.data = new_data;
        self.bits = new_bits;
    }

    /// Returns a palette index holding `block`, reusing an existing or dead
    /// slot where possible and widening the index array when the palette
    /// outgrows it. Increments the slot's refcount.
    fn acquire(&mut self, block: Block) -> usize {
        if let Some(j) = self.palette.iter().position(|&b| b == block) {
            if self.refs[j] == 0 && j != 0 {
                self.dead -= 1;
            }
            self.refs[j] += 1;
            return j;
        }
        if self.dead > 0 {
            if let Some(j) = (1..self.palette.len()).find(|&j| self.refs[j] == 0) {
                self.palette[j] = block;
                self.refs[j] = 1;
                self.dead -= 1;
                return j;
            }
        }
        if self.palette.len() == self.capacity() {
            let wider = WIDEN_LADDER
                .iter()
                .copied()
                .find(|&b| b > self.bits)
                .expect("palette cannot exceed 2^16 distinct blocks");
            self.repack(wider, None);
        }
        self.palette.push(block);
        self.refs.push(1);
        self.palette.len() - 1
    }

    /// Returns the block at entry `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Block {
        debug_assert!(i < BLOCKS_PER_CHUNK);
        if self.bits == 0 {
            return Block::AIR;
        }
        self.palette[self.index_at(i)]
    }

    /// Sets entry `i` and returns its previous block.
    pub fn set(&mut self, i: usize, block: Block) -> Block {
        debug_assert!(i < BLOCKS_PER_CHUNK);
        if self.bits == 0 {
            if block == Block::AIR {
                return Block::AIR;
            }
            self.materialize();
        }
        let old_idx = self.index_at(i);
        let old = self.palette[old_idx];
        if old == block {
            return old;
        }
        let new_idx = self.acquire(block);
        self.refs[old_idx] -= 1;
        if self.refs[old_idx] == 0 && old_idx != 0 {
            self.dead += 1;
        }
        self.write_index(i, new_idx);
        old
    }

    /// Bulk-fills `count` entries starting at `start`, spaced `stride`
    /// apart, with `block` — exactly equivalent to calling
    /// [`PaletteStore::set`] on each entry in ascending order, but the
    /// palette slot is resolved **once** for the whole run instead of once
    /// per entry (the per-entry palette scan is what made generation pay an
    /// 8× write-path premium over the dense layout).
    ///
    /// Invokes `on_replaced(previous_block, n)` once per distinct previous
    /// block that was actually overwritten, with how many entries it
    /// accounted for, in ascending palette-slot order (deterministic), and
    /// returns the total number of entries changed. Entries already holding
    /// `block` are left untouched and are not reported, matching `set`'s
    /// early return; a `0` return therefore means the fill was a no-op.
    ///
    /// The callback shape (rather than a returned `Vec`) keeps the bulk
    /// path allocation-free: generators issue thousands of short column
    /// fills per chunk, and two heap allocations per call cost more than
    /// the writes themselves.
    pub fn fill_strided(
        &mut self,
        start: usize,
        stride: usize,
        count: usize,
        block: Block,
        mut on_replaced: impl FnMut(Block, u32),
    ) -> u32 {
        debug_assert!(stride > 0);
        debug_assert!(count == 0 || start + (count - 1) * stride < BLOCKS_PER_CHUNK);
        if count == 0 {
            return 0;
        }
        if self.bits == 0 {
            if block == Block::AIR {
                return 0;
            }
            self.materialize();
        }
        // Resolve the palette slot once (this may widen the index array, so
        // the packing geometry below must be read *after* the acquire).
        let new_idx = self.acquire(block);
        let epw = (64 / self.bits) as usize;
        let bits = self.bits as usize;
        let mask = self.mask();
        // Overwritten-entry count per old palette slot. Stack storage for
        // the narrow widths every generated chunk uses; ≥8-bit palettes
        // (256+ slots) spill to a heap map-by-slot.
        let mut inline = [0u32; 16];
        let mut heap: Vec<u32> = Vec::new();
        let counts: &mut [u32] = if self.palette.len() <= inline.len() {
            &mut inline
        } else {
            heap.resize(self.palette.len(), 0);
            &mut heap
        };
        if stride == 1 {
            // Contiguous-slab fast path (the whole-layer geometry: with the
            // y-major index layout a horizontal slab is one contiguous run).
            // Interior words are handled wholesale: a word already equal to
            // the broadcast pattern is skipped, an all-slot-0 word (the
            // dominant case when generating into a fresh chunk) is replaced
            // with one store, and only mixed words decode per entry.
            let mut broadcast = 0u64;
            for e in 0..epw {
                broadcast |= (new_idx as u64) << (e * bits);
            }
            let mut i = start;
            let end = start + count;
            while i < end {
                let word = i / epw;
                let in_word = i % epw;
                let entries = (epw - in_word).min(end - i);
                if entries == epw {
                    let w = self.data[word];
                    if w != broadcast {
                        if w == 0 {
                            counts[0] += epw as u32;
                        } else {
                            let mut nw = w;
                            for e in 0..epw {
                                let shift = e * bits;
                                let old_idx = ((w >> shift) & mask) as usize;
                                if old_idx != new_idx {
                                    nw = (nw & !(mask << shift)) | ((new_idx as u64) << shift);
                                    counts[old_idx] += 1;
                                }
                            }
                            self.data[word] = nw;
                            i += epw;
                            continue;
                        }
                        self.data[word] = broadcast;
                    }
                } else {
                    for e in in_word..in_word + entries {
                        let shift = e * bits;
                        let old_idx = ((self.data[word] >> shift) & mask) as usize;
                        if old_idx != new_idx {
                            self.data[word] =
                                (self.data[word] & !(mask << shift)) | ((new_idx as u64) << shift);
                            counts[old_idx] += 1;
                        }
                    }
                }
                i += entries;
            }
        } else if stride.is_multiple_of(epw) {
            // Fast path for the column-fill geometry: every power-of-two
            // entry width divides the 256-entry vertical stride, so the
            // in-word shift is the same for the whole run and the word
            // cursor advances by a fixed step — no per-entry division.
            let shift = (start % epw) * bits;
            let step = stride / epw;
            let new_bits = (new_idx as u64) << shift;
            let mut word = start / epw;
            for _ in 0..count {
                let old_idx = ((self.data[word] >> shift) & mask) as usize;
                if old_idx != new_idx {
                    self.data[word] = (self.data[word] & !(mask << shift)) | new_bits;
                    counts[old_idx] += 1;
                }
                word += step;
            }
        } else {
            let mut i = start;
            for _ in 0..count {
                let word = i / epw;
                let shift = (i % epw) * bits;
                let old_idx = ((self.data[word] >> shift) & mask) as usize;
                if old_idx != new_idx {
                    self.data[word] =
                        (self.data[word] & !(mask << shift)) | ((new_idx as u64) << shift);
                    counts[old_idx] += 1;
                }
                i += stride;
            }
        }
        let mut changed: u32 = 0;
        for (old_idx, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            changed += n;
            self.refs[old_idx] -= n;
            if self.refs[old_idx] == 0 && old_idx != 0 {
                self.dead += 1;
            }
            on_replaced(self.palette[old_idx], n);
        }
        // Settle refcounts: `changed` new references, minus the provisional
        // one `acquire` took (which keeps the slot alive across a fill that
        // turns out to be a no-op; if it was both fresh and unused it dies
        // here and a later `gc` reclaims it).
        self.refs[new_idx] += changed;
        self.refs[new_idx] -= 1;
        if self.refs[new_idx] == 0 && new_idx != 0 {
            self.dead += 1;
        }
        changed
    }

    /// Compacts the palette: drops dead slots and narrows the index array
    /// to the minimal width addressing the remaining entries. A store that
    /// became all-air reverts to the O(1) unmaterialized representation.
    ///
    /// Cheap to call speculatively — an already-compact store returns
    /// immediately.
    pub fn gc(&mut self) {
        if self.bits == 0 {
            return;
        }
        if self.refs[0] as usize == BLOCKS_PER_CHUNK {
            *self = PaletteStore::default();
            return;
        }
        let live = self.palette.len() - self.dead as usize;
        let minimal = minimal_bits(live);
        if self.dead == 0 && self.bits == minimal {
            return;
        }
        let mut remap = vec![0usize; self.palette.len()];
        let mut palette = Vec::with_capacity(live);
        let mut refs = Vec::with_capacity(live);
        palette.push(Block::AIR);
        refs.push(self.refs[0]);
        for (j, slot) in remap.iter_mut().enumerate().skip(1) {
            if self.refs[j] > 0 {
                *slot = palette.len();
                palette.push(self.palette[j]);
                refs.push(self.refs[j]);
            }
        }
        self.repack(minimal, Some(&remap));
        self.palette = palette;
        self.refs = refs;
        self.dead = 0;
    }

    /// Number of stored entries whose kind is `kind`, via refcounts
    /// (O(palette), not O(entries)).
    #[must_use]
    pub fn count_kind(&self, kind: BlockKind) -> usize {
        if self.bits == 0 {
            return if kind == BlockKind::Air {
                BLOCKS_PER_CHUNK
            } else {
                0
            };
        }
        self.palette
            .iter()
            .zip(&self.refs)
            .filter(|&(b, _)| b.kind() == kind)
            .map(|(_, &r)| r as usize)
            .sum()
    }

    /// Heap bytes owned by this store (index words + palette + refcounts).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
            + self.palette.len() * std::mem::size_of::<Block>()
            + self.refs.len() * std::mem::size_of::<u32>()
    }

    /// Bits per packed index entry (0 for an unmaterialized all-air store).
    #[must_use]
    pub fn bits_per_entry(&self) -> u8 {
        self.bits
    }

    /// Iterates `(entry_index, block)` over all non-air entries, skipping
    /// whole all-air index words.
    pub fn iter_non_air(&self) -> NonAirEntries<'_> {
        NonAirEntries { store: self, i: 0 }
    }
}

/// Iterator over the non-air entries of a [`PaletteStore`].
#[derive(Debug)]
pub struct NonAirEntries<'a> {
    store: &'a PaletteStore,
    i: usize,
}

impl Iterator for NonAirEntries<'_> {
    type Item = (usize, Block);

    fn next(&mut self) -> Option<(usize, Block)> {
        let s = self.store;
        if s.bits == 0 {
            return None;
        }
        let epw = (64 / s.bits) as usize;
        while self.i < BLOCKS_PER_CHUNK {
            // An all-zero word is 64/bits consecutive air entries
            // (palette[0] is pinned to air): skip it in one step.
            if self.i.is_multiple_of(epw) && s.data[self.i / epw] == 0 {
                self.i += epw;
                continue;
            }
            let i = self.i;
            self.i += 1;
            let idx = s.index_at(i);
            if idx != 0 {
                let b = s.palette[idx];
                if !b.is_air() {
                    return Some((i, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> Vec<Block> {
        BlockKind::all().iter().map(|&k| Block::simple(k)).collect()
    }

    #[test]
    fn empty_store_reads_air_and_owns_nothing() {
        let s = PaletteStore::new_air();
        assert_eq!(s.get(0), Block::AIR);
        assert_eq!(s.get(BLOCKS_PER_CHUNK - 1), Block::AIR);
        assert_eq!(s.bits_per_entry(), 0);
        assert_eq!(s.storage_bytes(), 0);
        assert_eq!(s.count_kind(BlockKind::Air), BLOCKS_PER_CHUNK);
    }

    #[test]
    fn first_write_materializes_at_one_bit() {
        let mut s = PaletteStore::new_air();
        assert_eq!(s.set(5, Block::simple(BlockKind::Stone)), Block::AIR);
        assert_eq!(s.bits_per_entry(), 1);
        assert_eq!(s.get(5), Block::simple(BlockKind::Stone));
        assert_eq!(s.get(4), Block::AIR);
        assert_eq!(s.count_kind(BlockKind::Stone), 1);
        assert_eq!(s.count_kind(BlockKind::Air), BLOCKS_PER_CHUNK - 1);
    }

    #[test]
    fn widening_preserves_every_entry() {
        let mut s = PaletteStore::new_air();
        let blocks = kinds();
        // 20 distinct non-air values forces 1 -> 2 -> 4 -> 8 bit widening.
        for (i, b) in blocks.iter().skip(1).take(20).enumerate() {
            s.set(i * 97, *b);
        }
        assert_eq!(s.bits_per_entry(), 8);
        for (i, b) in blocks.iter().skip(1).take(20).enumerate() {
            assert_eq!(s.get(i * 97), *b, "entry {i} lost in widening");
        }
    }

    #[test]
    fn dead_slots_are_reused_without_widening() {
        let mut s = PaletteStore::new_air();
        s.set(0, Block::simple(BlockKind::Stone));
        // Overwrite: stone's slot dies, sand should reuse it.
        s.set(0, Block::simple(BlockKind::Sand));
        let bits_before = s.bits_per_entry();
        s.set(1, Block::simple(BlockKind::Dirt));
        assert_eq!(s.bits_per_entry(), bits_before, "dead slot not reused");
        assert_eq!(s.get(0), Block::simple(BlockKind::Sand));
        assert_eq!(s.get(1), Block::simple(BlockKind::Dirt));
    }

    #[test]
    fn gc_narrows_after_palette_shrinks() {
        let mut s = PaletteStore::new_air();
        let blocks = kinds();
        for (i, b) in blocks.iter().skip(1).take(20).enumerate() {
            s.set(i, *b);
        }
        assert_eq!(s.bits_per_entry(), 8);
        // Remove all but three distinct values.
        for i in 3..20 {
            s.set(i, Block::AIR);
        }
        s.gc();
        // 4 live entries (air + 3) fit in 2 bits.
        assert_eq!(s.bits_per_entry(), 2);
        for (i, b) in blocks.iter().skip(1).take(3).enumerate() {
            assert_eq!(s.get(i), *b, "entry {i} lost in gc");
        }
        assert_eq!(s.get(10), Block::AIR);
    }

    #[test]
    fn gc_on_compact_store_is_a_no_op() {
        let mut s = PaletteStore::new_air();
        s.set(0, Block::simple(BlockKind::Stone));
        s.gc();
        let bits = s.bits_per_entry();
        let bytes = s.storage_bytes();
        s.gc();
        assert_eq!(s.bits_per_entry(), bits);
        assert_eq!(s.storage_bytes(), bytes);
    }

    #[test]
    fn all_air_store_reverts_to_unmaterialized_on_gc() {
        let mut s = PaletteStore::new_air();
        s.set(100, Block::simple(BlockKind::Stone));
        s.set(100, Block::AIR);
        s.gc();
        assert_eq!(s.bits_per_entry(), 0);
        assert_eq!(s.storage_bytes(), 0);
        assert_eq!(s.get(100), Block::AIR);
    }

    #[test]
    fn gc_compacts_to_non_power_of_two_widths() {
        let mut s = PaletteStore::new_air();
        let blocks = kinds();
        // 6 distinct non-air values + air = 7 live entries: minimal width 3.
        for (i, b) in blocks.iter().skip(1).take(6).enumerate() {
            s.set(i, *b);
        }
        s.gc();
        assert_eq!(s.bits_per_entry(), 3);
        for (i, b) in blocks.iter().skip(1).take(6).enumerate() {
            assert_eq!(s.get(i), *b);
        }
        // 64/3 = 21 entries per word, 1 bit of waste per word.
        let words = BLOCKS_PER_CHUNK.div_ceil(64 / 3);
        assert_eq!(s.storage_bytes(), words * 8 + 7 * 2 + 7 * 4);
    }

    #[test]
    fn state_variants_are_distinct_palette_entries() {
        let mut s = PaletteStore::new_air();
        s.set(0, Block::with_state(BlockKind::RedstoneDust, 3));
        s.set(1, Block::with_state(BlockKind::RedstoneDust, 9));
        assert_eq!(s.get(0).state(), 3);
        assert_eq!(s.get(1).state(), 9);
        assert_eq!(s.count_kind(BlockKind::RedstoneDust), 2);
    }

    #[test]
    fn iter_non_air_skips_air_words_but_finds_everything() {
        let mut s = PaletteStore::new_air();
        s.set(7, Block::simple(BlockKind::Stone));
        s.set(5_000, Block::simple(BlockKind::Sand));
        s.set(BLOCKS_PER_CHUNK - 1, Block::simple(BlockKind::Tnt));
        let found: Vec<(usize, Block)> = s.iter_non_air().collect();
        assert_eq!(
            found,
            vec![
                (7, Block::simple(BlockKind::Stone)),
                (5_000, Block::simple(BlockKind::Sand)),
                (BLOCKS_PER_CHUNK - 1, Block::simple(BlockKind::Tnt)),
            ]
        );
    }

    /// Reference model for `fill_strided`: per-entry `set` in ascending
    /// order, with the replaced blocks aggregated the same way.
    fn fill_by_set(
        s: &mut PaletteStore,
        start: usize,
        stride: usize,
        count: usize,
        block: Block,
    ) -> (u32, Vec<(Block, u32)>) {
        let mut replaced: Vec<(Block, u32)> = Vec::new();
        let mut changed = 0u32;
        for k in 0..count {
            let old = s.set(start + k * stride, block);
            if old != block {
                changed += 1;
                match replaced.iter_mut().find(|(b, _)| *b == old) {
                    Some((_, n)) => *n += 1,
                    None => replaced.push((old, 1)),
                }
            }
        }
        (changed, replaced)
    }

    #[test]
    fn fill_strided_matches_per_entry_set() {
        let blocks = kinds();
        // Covers both the aligned fast path (stride divisible by entries
        // per word) and the general path (stride 7), several widths, and
        // overlapping refills that kill palette slots.
        let runs = [
            (0usize, 256usize, 128usize),
            (17, 256, 100),
            (3, 7, 1000),
            (100, 1, 300),
            (0, 256, 128),
            (5, 513, 60),
        ];
        let mut a = PaletteStore::new_air();
        let mut b = PaletteStore::new_air();
        for (pass, &(start, stride, count)) in runs.iter().enumerate() {
            for (j, &block) in blocks.iter().take(6).enumerate() {
                let mut got: Vec<(Block, u32)> = Vec::new();
                let got_changed =
                    a.fill_strided(start + j, stride, count, block, |old, n| got.push((old, n)));
                let (want_changed, mut want) = fill_by_set(&mut b, start + j, stride, count, block);
                assert_eq!(got_changed, want_changed, "pass {pass} block {j}");
                // fill_strided reports in palette-slot order; compare as sets.
                got.sort_by_key(|(bl, _)| (bl.kind() as u16, bl.state()));
                want.sort_by_key(|(bl, _)| (bl.kind() as u16, bl.state()));
                assert_eq!(got, want, "pass {pass} block {j}");
            }
            a.gc();
            b.gc();
            for i in 0..BLOCKS_PER_CHUNK {
                assert_eq!(a.get(i), b.get(i), "entry {i} diverged after pass {pass}");
            }
        }
    }

    #[test]
    fn fill_strided_noop_leaves_store_unchanged() {
        let mut s = PaletteStore::new_air();
        // All-air fill on an unmaterialized store must not materialize it.
        let changed = s.fill_strided(0, 256, 128, Block::AIR, |_, _| panic!("no-op reported"));
        assert_eq!(changed, 0);
        assert_eq!(s.bits_per_entry(), 0);
        // Refilling with the same block reports nothing and survives gc.
        s.fill_strided(0, 256, 128, Block::simple(BlockKind::Stone), |_, _| {});
        let changed = s.fill_strided(0, 256, 128, Block::simple(BlockKind::Stone), |_, _| {
            panic!("no-op reported")
        });
        assert_eq!(changed, 0);
        s.gc();
        assert_eq!(s.count_kind(BlockKind::Stone), 128);
        assert_eq!(s.get(0), Block::simple(BlockKind::Stone));
    }

    #[test]
    fn fill_strided_refill_to_air_reverts_on_gc() {
        let mut s = PaletteStore::new_air();
        s.fill_strided(
            0,
            1,
            BLOCKS_PER_CHUNK,
            Block::simple(BlockKind::Sand),
            |_, _| {},
        );
        let mut reported = Vec::new();
        let changed = s.fill_strided(0, 1, BLOCKS_PER_CHUNK, Block::AIR, |old, n| {
            reported.push((old, n));
        });
        assert_eq!(changed, BLOCKS_PER_CHUNK as u32);
        assert_eq!(
            reported,
            vec![(Block::simple(BlockKind::Sand), BLOCKS_PER_CHUNK as u32)]
        );
        s.gc();
        assert_eq!(s.bits_per_entry(), 0, "all-air store should unmaterialize");
    }

    #[test]
    fn matches_dense_reference_under_random_writes() {
        // Deterministic xorshift write storm, checked against Vec<Block>.
        let mut dense = vec![Block::AIR; BLOCKS_PER_CHUNK];
        let mut s = PaletteStore::new_air();
        let blocks = kinds();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for step in 0..20_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % BLOCKS_PER_CHUNK as u64) as usize;
            let b = blocks[(x >> 32) as usize % blocks.len()];
            let expected = std::mem::replace(&mut dense[i], b);
            assert_eq!(s.set(i, b), expected, "old value diverged at step {step}");
            if step % 4_096 == 0 {
                s.gc();
            }
        }
        for (i, &b) in dense.iter().enumerate() {
            assert_eq!(s.get(i), b, "entry {i} diverged");
        }
    }
}
