//! Axis-aligned block regions (cuboids).
//!
//! Regions are used by workload builders (e.g. the 16×16×14 TNT cuboid of the
//! TNT world), by explosion handling, and by spatial queries such as "all
//! blocks near a player".

use serde::{Deserialize, Serialize};

use crate::pos::BlockPos;

/// An inclusive axis-aligned cuboid of block positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    min: BlockPos,
    max: BlockPos,
}

impl Region {
    /// Creates a region spanning the two corner positions (inclusive).
    ///
    /// The corners may be given in any order; they are normalized so that
    /// `min() <= max()` on every axis.
    #[must_use]
    pub fn new(a: BlockPos, b: BlockPos) -> Self {
        Region {
            min: BlockPos::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: BlockPos::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// Creates a cubic region centred on `center` extending `radius` blocks in
    /// every direction.
    #[must_use]
    pub fn cube_around(center: BlockPos, radius: i32) -> Self {
        Region::new(
            center.offset(-radius, -radius, -radius),
            center.offset(radius, radius, radius),
        )
    }

    /// Returns the minimum corner.
    #[must_use]
    pub fn min(&self) -> BlockPos {
        self.min
    }

    /// Returns the maximum corner.
    #[must_use]
    pub fn max(&self) -> BlockPos {
        self.max
    }

    /// Extent along each axis, in blocks (always at least 1).
    #[must_use]
    pub fn dimensions(&self) -> (u32, u32, u32) {
        (
            (self.max.x - self.min.x + 1) as u32,
            (self.max.y - self.min.y + 1) as u32,
            (self.max.z - self.min.z + 1) as u32,
        )
    }

    /// Total number of block positions contained in the region.
    #[must_use]
    pub fn volume(&self) -> u64 {
        let (dx, dy, dz) = self.dimensions();
        u64::from(dx) * u64::from(dy) * u64::from(dz)
    }

    /// Returns `true` if the position lies inside the region (inclusive).
    #[must_use]
    pub fn contains(&self, pos: BlockPos) -> bool {
        pos.x >= self.min.x
            && pos.x <= self.max.x
            && pos.y >= self.min.y
            && pos.y <= self.max.y
            && pos.z >= self.min.z
            && pos.z <= self.max.z
    }

    /// Returns `true` if this region and `other` share at least one block.
    #[must_use]
    pub fn intersects(&self, other: &Region) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Iterates over every block position in the region in `y`-major order.
    pub fn iter(&self) -> impl Iterator<Item = BlockPos> + '_ {
        let min = self.min;
        let max = self.max;
        (min.y..=max.y).flat_map(move |y| {
            (min.z..=max.z).flat_map(move |z| (min.x..=max.x).map(move |x| BlockPos::new(x, y, z)))
        })
    }

    /// Returns the centre of the region, rounded towards the minimum corner.
    #[must_use]
    pub fn center(&self) -> BlockPos {
        BlockPos::new(
            self.min.x + (self.max.x - self.min.x) / 2,
            self.min.y + (self.max.y - self.min.y) / 2,
            self.min.z + (self.max.z - self.min.z) / 2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalized() {
        let r = Region::new(BlockPos::new(5, 10, -3), BlockPos::new(-2, 1, 7));
        assert_eq!(r.min(), BlockPos::new(-2, 1, -3));
        assert_eq!(r.max(), BlockPos::new(5, 10, 7));
    }

    #[test]
    fn volume_matches_dimensions() {
        let r = Region::new(BlockPos::new(0, 0, 0), BlockPos::new(15, 13, 15));
        assert_eq!(r.dimensions(), (16, 14, 16));
        assert_eq!(r.volume(), 16 * 14 * 16);
    }

    #[test]
    fn single_block_region() {
        let p = BlockPos::new(3, 3, 3);
        let r = Region::new(p, p);
        assert_eq!(r.volume(), 1);
        assert!(r.contains(p));
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = Region::new(BlockPos::new(0, 0, 0), BlockPos::new(2, 2, 2));
        assert!(r.contains(BlockPos::new(0, 0, 0)));
        assert!(r.contains(BlockPos::new(2, 2, 2)));
        assert!(!r.contains(BlockPos::new(3, 0, 0)));
        assert!(!r.contains(BlockPos::new(0, -1, 0)));
    }

    #[test]
    fn iter_visits_every_position_once() {
        let r = Region::new(BlockPos::new(-1, 0, -1), BlockPos::new(1, 1, 1));
        let all: Vec<_> = r.iter().collect();
        assert_eq!(all.len() as u64, r.volume());
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len() as u64, r.volume());
        for p in &all {
            assert!(r.contains(*p));
        }
    }

    #[test]
    fn intersection() {
        let a = Region::new(BlockPos::new(0, 0, 0), BlockPos::new(4, 4, 4));
        let b = Region::new(BlockPos::new(4, 4, 4), BlockPos::new(8, 8, 8));
        let c = Region::new(BlockPos::new(5, 5, 5), BlockPos::new(8, 8, 8));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn cube_around_and_center() {
        let c = BlockPos::new(10, 20, 30);
        let r = Region::cube_around(c, 2);
        assert_eq!(r.dimensions(), (5, 5, 5));
        assert_eq!(r.center(), c);
        assert!(r.contains(c.offset(2, -2, 1)));
        assert!(!r.contains(c.offset(3, 0, 0)));
    }
}
