//! Block physics: gravity-affected blocks and support checks.
//!
//! Section 2.2.2 of the paper: "MLGs need to perform physics simulations on
//! the many blocks that compose the terrain itself. For example, a bridge can
//! collapse when a player removes its support pillars."
//!
//! This module implements the falling-block rule for gravity-affected kinds
//! (sand, gravel): whenever such a block receives an update and has no support
//! below, it falls to the highest solid block underneath it.

use crate::block::{Block, BlockKind};
use crate::pos::BlockPos;
use crate::shard::{BlockReader, TerrainView};

/// Result of applying the gravity rule at a single position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GravityOutcome {
    /// Whether the block moved.
    pub fell: bool,
    /// How many blocks the block fell (0 when it did not move).
    pub fall_distance: u32,
    /// Number of world reads performed while scanning for a landing spot.
    pub blocks_scanned: u32,
}

/// Returns `true` if the block at `pos` would currently fall.
#[must_use]
pub fn is_unsupported<W: BlockReader>(world: &mut W, pos: BlockPos) -> bool {
    let block = world.block(pos);
    if !block.kind().is_gravity_affected() {
        return false;
    }
    let below = world.block(pos.down());
    below.is_air() || below.kind().is_fluid()
}

/// Applies gravity at `pos`: if the block there is gravity-affected and
/// unsupported, it is moved down to rest on the first solid block below.
///
/// The move is performed through [`TerrainView::set_block`] so the change is
/// recorded and neighbours (including the vacated position above) receive
/// updates — this is what lets a whole sand pillar collapse over successive
/// updates, exactly like the bridge example in the paper.
pub fn apply_gravity<W: TerrainView>(world: &mut W, pos: BlockPos) -> GravityOutcome {
    let mut outcome = GravityOutcome::default();
    let block = world.block(pos);
    outcome.blocks_scanned += 1;
    if !block.kind().is_gravity_affected() {
        return outcome;
    }
    // Scan downwards for the landing position.
    let mut landing = pos;
    loop {
        let below = landing.down();
        if below.y < 0 {
            break;
        }
        let below_block = world.block(below);
        outcome.blocks_scanned += 1;
        if below_block.is_air() || below_block.kind().is_fluid() {
            landing = below;
        } else {
            break;
        }
    }
    if landing == pos {
        return outcome;
    }
    let distance = (pos.y - landing.y) as u32;
    world.set_block(pos, Block::AIR);
    world.set_block(landing, block);
    outcome.fell = true;
    outcome.fall_distance = distance;
    outcome
}

/// Returns `true` if the (solid, non-gravity) block at `pos` has lost all
/// support, i.e. no solid block is face-adjacent. Used by explosion handling
/// to decide which neighbouring blocks should also break.
#[must_use]
pub fn has_any_support<W: BlockReader>(world: &mut W, pos: BlockPos) -> bool {
    pos.neighbors().iter().any(|&n| world.block(n).is_solid())
}

/// Block kinds that the physics rule is interested in. Exposed so that the
/// terrain simulator can cheaply pre-filter updates.
#[must_use]
pub fn reacts_to_updates(kind: BlockKind) -> bool {
    kind.is_gravity_affected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;
    use crate::world::World;

    fn world() -> World {
        // Flat grass surface at y = 60.
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn sand_falls_to_the_ground() {
        let mut w = world();
        let start = BlockPos::new(4, 80, 4);
        w.set_block_silent(start, Block::simple(BlockKind::Sand));
        let outcome = apply_gravity(&mut w, start);
        assert!(outcome.fell);
        assert_eq!(outcome.fall_distance, 19); // 80 -> 61 (on top of grass at 60)
        assert_eq!(w.block(start), Block::AIR);
        assert_eq!(w.block(BlockPos::new(4, 61, 4)).kind(), BlockKind::Sand);
    }

    #[test]
    fn supported_sand_does_not_fall() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4); // directly on the grass surface
        w.set_block_silent(pos, Block::simple(BlockKind::Sand));
        assert!(!is_unsupported(&mut w, pos));
        let outcome = apply_gravity(&mut w, pos);
        assert!(!outcome.fell);
        assert_eq!(w.block(pos).kind(), BlockKind::Sand);
    }

    #[test]
    fn stone_never_falls() {
        let mut w = world();
        let pos = BlockPos::new(4, 80, 4);
        w.set_block_silent(pos, Block::simple(BlockKind::Stone));
        assert!(!is_unsupported(&mut w, pos));
        let outcome = apply_gravity(&mut w, pos);
        assert!(!outcome.fell);
        assert_eq!(w.block(pos).kind(), BlockKind::Stone);
    }

    #[test]
    fn sand_falls_through_water() {
        let mut w = world();
        let pos = BlockPos::new(4, 70, 4);
        for y in 61..70 {
            w.set_block_silent(BlockPos::new(4, y, 4), Block::simple(BlockKind::Water));
        }
        w.set_block_silent(pos, Block::simple(BlockKind::Sand));
        assert!(is_unsupported(&mut w, pos));
        let outcome = apply_gravity(&mut w, pos);
        assert!(outcome.fell);
        assert_eq!(w.block(BlockPos::new(4, 61, 4)).kind(), BlockKind::Sand);
    }

    #[test]
    fn falling_triggers_neighbor_updates() {
        let mut w = world();
        let start = BlockPos::new(4, 70, 4);
        w.set_block_silent(start, Block::simple(BlockKind::Sand));
        apply_gravity(&mut w, start);
        // Two set_block calls: the vacated position and the landing position,
        // each enqueueing itself plus six neighbours (with dedup).
        assert!(w.updates().immediate_len() > 6);
        assert_eq!(w.pending_change_count(), 2);
    }

    #[test]
    fn support_detection() {
        let mut w = world();
        let floating = BlockPos::new(4, 90, 4);
        w.set_block_silent(floating, Block::simple(BlockKind::Planks));
        assert!(!has_any_support(&mut w, floating));
        w.set_block_silent(floating.down(), Block::simple(BlockKind::Stone));
        assert!(has_any_support(&mut w, floating));
    }

    #[test]
    fn sand_pillar_collapses_block_by_block() {
        let mut w = world();
        // Build a floating pillar of sand with a gap below it.
        for y in 70..73 {
            w.set_block_silent(BlockPos::new(2, y, 2), Block::simple(BlockKind::Sand));
        }
        // Apply gravity bottom-up as the update queue would.
        for y in 70..73 {
            apply_gravity(&mut w, BlockPos::new(2, y, 2));
        }
        for y in 61..64 {
            assert_eq!(w.block(BlockPos::new(2, y, 2)).kind(), BlockKind::Sand);
        }
        for y in 70..73 {
            assert_eq!(w.block(BlockPos::new(2, y, 2)), Block::AIR);
        }
    }
}
