//! Block-update scheduling.
//!
//! Terrain simulation in an MLG is driven by *block updates*: when a block
//! changes, its neighbours are informed and may react (fluids start flowing,
//! unsupported sand falls, redstone recomputes power). Some components also
//! schedule themselves to update after a fixed delay (repeaters, observers,
//! growing plants). This module implements the queues that carry those events
//! between ticks; the rules that react to them live in the sibling modules and
//! are orchestrated by [`crate::sim::TerrainSimulator`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::pos::BlockPos;

/// Why a block update was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateKind {
    /// A neighbouring block changed.
    NeighborChanged,
    /// A previously scheduled tick (repeater delay, observer pulse, fluid
    /// spread step) became due.
    Scheduled,
    /// The block was selected by the random-tick lottery (plant growth).
    Random,
}

/// A single pending block update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockUpdate {
    /// The block position to update.
    pub pos: BlockPos,
    /// Why the update fires.
    pub kind: UpdateKind,
}

impl BlockUpdate {
    /// Creates a neighbour-changed update.
    #[must_use]
    pub fn neighbor(pos: BlockPos) -> Self {
        BlockUpdate {
            pos,
            kind: UpdateKind::NeighborChanged,
        }
    }

    /// Creates a scheduled update.
    #[must_use]
    pub fn scheduled(pos: BlockPos) -> Self {
        BlockUpdate {
            pos,
            kind: UpdateKind::Scheduled,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScheduledEntry {
    due_tick: u64,
    seq: u64,
    pos: BlockPos,
}

impl Ord for ScheduledEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_tick, self.seq, self.pos).cmp(&(other.due_tick, other.seq, other.pos))
    }
}

impl PartialOrd for ScheduledEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The per-world block-update queue.
///
/// Holds immediate neighbour updates (processed in FIFO order within the
/// current tick) and time-scheduled updates (processed when their due tick is
/// reached).
#[derive(Debug, Default)]
pub struct UpdateQueue {
    immediate: VecDeque<BlockUpdate>,
    immediate_set: HashSet<BlockPos>,
    scheduled: BinaryHeap<Reverse<ScheduledEntry>>,
    scheduled_set: HashSet<(BlockPos, u64)>,
    seq: u64,
}

impl UpdateQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        UpdateQueue::default()
    }

    /// Enqueues an immediate neighbour-changed update for `pos`.
    ///
    /// Duplicate positions already waiting in the immediate queue are
    /// coalesced, mirroring how real MLG servers deduplicate neighbour
    /// updates within a tick.
    pub fn push_neighbor(&mut self, pos: BlockPos) {
        if self.immediate_set.insert(pos) {
            self.immediate.push_back(BlockUpdate::neighbor(pos));
        }
    }

    /// Schedules an update for `pos` to fire at absolute game tick `due_tick`.
    ///
    /// Scheduling the same position for the same tick twice is coalesced.
    pub fn schedule_at(&mut self, pos: BlockPos, due_tick: u64) {
        if self.scheduled_set.insert((pos, due_tick)) {
            self.seq += 1;
            self.scheduled.push(Reverse(ScheduledEntry {
                due_tick,
                seq: self.seq,
                pos,
            }));
        }
    }

    /// Pops the next immediate update, if any.
    pub fn pop_immediate(&mut self) -> Option<BlockUpdate> {
        let update = self.immediate.pop_front()?;
        self.immediate_set.remove(&update.pos);
        Some(update)
    }

    /// Pops all scheduled updates that are due at or before `current_tick`,
    /// in due-tick then insertion order.
    pub fn pop_due(&mut self, current_tick: u64) -> Vec<BlockUpdate> {
        let mut due = Vec::new();
        while let Some(Reverse(entry)) = self.scheduled.peek() {
            if entry.due_tick > current_tick {
                break;
            }
            let Reverse(entry) = self.scheduled.pop().expect("peeked entry exists");
            self.scheduled_set.remove(&(entry.pos, entry.due_tick));
            due.push(BlockUpdate::scheduled(entry.pos));
        }
        due
    }

    /// Number of immediate updates currently queued.
    #[must_use]
    pub fn immediate_len(&self) -> usize {
        self.immediate.len()
    }

    /// Number of scheduled updates currently queued (including not-yet-due).
    #[must_use]
    pub fn scheduled_len(&self) -> usize {
        self.scheduled.len()
    }

    /// Returns `true` if no updates of any kind are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.immediate.is_empty() && self.scheduled.is_empty()
    }

    /// Removes every pending update. Used when resetting a world between
    /// benchmark iterations.
    pub fn clear(&mut self) {
        self.immediate.clear();
        self.immediate_set.clear();
        self.scheduled.clear();
        self.scheduled_set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_updates_are_fifo() {
        let mut q = UpdateQueue::new();
        q.push_neighbor(BlockPos::new(1, 0, 0));
        q.push_neighbor(BlockPos::new(2, 0, 0));
        q.push_neighbor(BlockPos::new(3, 0, 0));
        assert_eq!(q.pop_immediate().unwrap().pos, BlockPos::new(1, 0, 0));
        assert_eq!(q.pop_immediate().unwrap().pos, BlockPos::new(2, 0, 0));
        assert_eq!(q.pop_immediate().unwrap().pos, BlockPos::new(3, 0, 0));
        assert!(q.pop_immediate().is_none());
    }

    #[test]
    fn immediate_duplicates_are_coalesced() {
        let mut q = UpdateQueue::new();
        let p = BlockPos::new(1, 2, 3);
        q.push_neighbor(p);
        q.push_neighbor(p);
        assert_eq!(q.immediate_len(), 1);
        q.pop_immediate();
        // After popping, the position may be queued again.
        q.push_neighbor(p);
        assert_eq!(q.immediate_len(), 1);
    }

    #[test]
    fn scheduled_updates_fire_at_due_tick() {
        let mut q = UpdateQueue::new();
        let p1 = BlockPos::new(1, 0, 0);
        let p2 = BlockPos::new(2, 0, 0);
        q.schedule_at(p1, 10);
        q.schedule_at(p2, 5);
        assert!(q.pop_due(4).is_empty());
        let due5 = q.pop_due(5);
        assert_eq!(due5.len(), 1);
        assert_eq!(due5[0].pos, p2);
        assert_eq!(due5[0].kind, UpdateKind::Scheduled);
        let due10 = q.pop_due(20);
        assert_eq!(due10.len(), 1);
        assert_eq!(due10[0].pos, p1);
        assert!(q.is_empty());
    }

    #[test]
    fn scheduled_same_tick_keeps_insertion_order() {
        let mut q = UpdateQueue::new();
        let positions: Vec<_> = (0..5).map(|i| BlockPos::new(i, 0, 0)).collect();
        for &p in &positions {
            q.schedule_at(p, 3);
        }
        let due: Vec<_> = q.pop_due(3).into_iter().map(|u| u.pos).collect();
        assert_eq!(due, positions);
    }

    #[test]
    fn scheduled_duplicates_for_same_tick_coalesce() {
        let mut q = UpdateQueue::new();
        let p = BlockPos::new(0, 0, 0);
        q.schedule_at(p, 2);
        q.schedule_at(p, 2);
        q.schedule_at(p, 3);
        assert_eq!(q.scheduled_len(), 2);
        assert_eq!(q.pop_due(2).len(), 1);
        assert_eq!(q.pop_due(3).len(), 1);
    }

    #[test]
    fn clear_removes_everything() {
        let mut q = UpdateQueue::new();
        q.push_neighbor(BlockPos::new(0, 0, 0));
        q.schedule_at(BlockPos::new(1, 1, 1), 100);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.immediate_len(), 0);
        assert_eq!(q.scheduled_len(), 0);
    }
}
