//! Plant growth driven by random ticks.
//!
//! "Plant growth is an example of a dynamic element unique to MLGs. Plants and
//! trees change over time, reshaping the nearby terrain, thus generating new
//! workload." (Section 2.2.2.) Kelp growth in particular drives the Kelp farm
//! construct of the Farm workload world (Table 3).

use crate::block::{Block, BlockKind};
use crate::chunk::WORLD_HEIGHT;
use crate::pos::BlockPos;
use crate::shard::TerrainView;

/// Maximum growth stage for staged crops (wheat, sugar cane).
pub const MAX_CROP_STAGE: u8 = 7;

/// Maximum natural height of a kelp stalk, in blocks.
pub const MAX_KELP_HEIGHT: u8 = 16;

/// Result of applying a random tick to a plant block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrowthOutcome {
    /// Whether the plant advanced a growth stage or grew a new block.
    pub grew: bool,
    /// Number of new blocks placed (tree growth, kelp extension).
    pub blocks_placed: u32,
    /// Number of world positions read while evaluating growth conditions.
    pub blocks_scanned: u32,
}

/// Applies a random tick to the block at `pos`, if it is a plant.
pub fn apply_random_tick<W: TerrainView>(world: &mut W, pos: BlockPos) -> GrowthOutcome {
    let block = world.block(pos);
    match block.kind() {
        BlockKind::Wheat => grow_wheat(world, pos, block),
        BlockKind::Kelp => grow_kelp(world, pos, block),
        BlockKind::SugarCane => grow_sugar_cane(world, pos, block),
        BlockKind::Sapling => grow_sapling(world, pos, block),
        _ => GrowthOutcome::default(),
    }
}

fn grow_wheat<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> GrowthOutcome {
    let mut outcome = GrowthOutcome {
        blocks_scanned: 1,
        ..GrowthOutcome::default()
    };
    let below = world.block(pos.down());
    outcome.blocks_scanned += 1;
    if below.kind() != BlockKind::Farmland {
        // Wheat without farmland pops off.
        world.set_block(pos, Block::AIR);
        return outcome;
    }
    if block.state() < MAX_CROP_STAGE {
        world.set_block(pos, block.set_state(block.state() + 1));
        outcome.grew = true;
    }
    outcome
}

fn grow_kelp<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> GrowthOutcome {
    let mut outcome = GrowthOutcome {
        blocks_scanned: 2,
        ..GrowthOutcome::default()
    };
    let height = block.state();
    if height >= MAX_KELP_HEIGHT {
        return outcome;
    }
    let above = pos.up();
    if above.y >= WORLD_HEIGHT as i32 {
        return outcome;
    }
    // Kelp only grows upwards through water.
    if world.block(above).kind() == BlockKind::Water {
        world.set_block(above, Block::with_state(BlockKind::Kelp, height + 1));
        outcome.grew = true;
        outcome.blocks_placed = 1;
    }
    outcome
}

fn grow_sugar_cane<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> GrowthOutcome {
    let mut outcome = GrowthOutcome {
        blocks_scanned: 2,
        ..GrowthOutcome::default()
    };
    if block.state() >= 2 {
        return outcome; // Max stack height of 3 blocks.
    }
    let above = pos.up();
    if world.block(above).is_air() {
        world.set_block(
            above,
            Block::with_state(BlockKind::SugarCane, block.state() + 1),
        );
        outcome.grew = true;
        outcome.blocks_placed = 1;
    }
    outcome
}

fn grow_sapling<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> GrowthOutcome {
    let mut outcome = GrowthOutcome {
        blocks_scanned: 1,
        ..GrowthOutcome::default()
    };
    // Saplings need two random ticks to mature before turning into a tree.
    if block.state() < 1 {
        world.set_block(pos, block.set_state(block.state() + 1));
        outcome.grew = true;
        return outcome;
    }
    // Grow a small tree: 4-block trunk with a 3×3×2 canopy.
    let trunk_height = 4;
    for dy in 0..trunk_height {
        world.set_block(pos.offset(0, dy, 0), Block::simple(BlockKind::Log));
        outcome.blocks_placed += 1;
    }
    for dy in trunk_height - 1..=trunk_height + 1 {
        for dx in -1..=1 {
            for dz in -1..=1 {
                let p = pos.offset(dx, dy, dz);
                outcome.blocks_scanned += 1;
                if world.block(p).is_air() {
                    world.set_block(p, Block::simple(BlockKind::Leaves));
                    outcome.blocks_placed += 1;
                }
            }
        }
    }
    outcome.grew = true;
    outcome
}

/// Block kinds that react to random ticks.
#[must_use]
pub fn reacts_to_random_tick(kind: BlockKind) -> bool {
    kind.is_plant()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;
    use crate::world::World;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn wheat_advances_stages_on_farmland() {
        let mut w = world();
        let soil = BlockPos::new(3, 61, 3);
        let crop = soil.up();
        w.set_block_silent(soil, Block::with_state(BlockKind::Farmland, 1));
        w.set_block_silent(crop, Block::simple(BlockKind::Wheat));
        for expected in 1..=MAX_CROP_STAGE {
            let out = apply_random_tick(&mut w, crop);
            assert!(out.grew);
            assert_eq!(w.block(crop).state(), expected);
        }
        // Fully grown wheat stops growing.
        let out = apply_random_tick(&mut w, crop);
        assert!(!out.grew);
        assert_eq!(w.block(crop).state(), MAX_CROP_STAGE);
    }

    #[test]
    fn wheat_without_farmland_breaks() {
        let mut w = world();
        let crop = BlockPos::new(3, 61, 3); // standing on grass, not farmland
        w.set_block_silent(crop, Block::simple(BlockKind::Wheat));
        apply_random_tick(&mut w, crop);
        assert_eq!(w.block(crop), Block::AIR);
    }

    #[test]
    fn kelp_grows_upward_through_water() {
        let mut w = world();
        let base = BlockPos::new(3, 61, 3);
        w.set_block_silent(base, Block::simple(BlockKind::Kelp));
        for y in 62..70 {
            w.set_block_silent(BlockPos::new(3, y, 3), Block::simple(BlockKind::Water));
        }
        let out = apply_random_tick(&mut w, base);
        assert!(out.grew);
        assert_eq!(w.block(base.up()).kind(), BlockKind::Kelp);
        assert_eq!(w.block(base.up()).state(), 1);
    }

    #[test]
    fn kelp_does_not_grow_into_air() {
        let mut w = world();
        let base = BlockPos::new(3, 61, 3);
        w.set_block_silent(base, Block::simple(BlockKind::Kelp));
        let out = apply_random_tick(&mut w, base);
        assert!(!out.grew);
        assert_eq!(w.block(base.up()), Block::AIR);
    }

    #[test]
    fn kelp_respects_height_limit() {
        let mut w = world();
        let top = BlockPos::new(3, 61, 3);
        w.set_block_silent(top, Block::with_state(BlockKind::Kelp, MAX_KELP_HEIGHT));
        w.set_block_silent(top.up(), Block::simple(BlockKind::Water));
        let out = apply_random_tick(&mut w, top);
        assert!(!out.grew);
    }

    #[test]
    fn sapling_becomes_tree_after_two_ticks() {
        let mut w = world();
        let pos = BlockPos::new(3, 61, 3);
        w.set_block_silent(pos, Block::simple(BlockKind::Sapling));
        let first = apply_random_tick(&mut w, pos);
        assert!(first.grew);
        assert_eq!(w.block(pos).kind(), BlockKind::Sapling);
        let second = apply_random_tick(&mut w, pos);
        assert!(second.grew);
        assert!(second.blocks_placed > 4);
        assert_eq!(w.block(pos).kind(), BlockKind::Log);
        assert_eq!(w.block(pos.offset(1, 4, 0)).kind(), BlockKind::Leaves);
    }

    #[test]
    fn sugar_cane_grows_to_height_three() {
        let mut w = world();
        let base = BlockPos::new(3, 61, 3);
        w.set_block_silent(base, Block::simple(BlockKind::SugarCane));
        let out1 = apply_random_tick(&mut w, base);
        assert!(out1.grew);
        let mid = base.up();
        assert_eq!(w.block(mid).kind(), BlockKind::SugarCane);
        let out2 = apply_random_tick(&mut w, mid);
        assert!(out2.grew);
        // The top segment has state 2 and refuses to grow further.
        let top = mid.up();
        let out3 = apply_random_tick(&mut w, top);
        assert!(!out3.grew);
    }

    #[test]
    fn non_plants_ignore_random_ticks() {
        let mut w = world();
        let pos = BlockPos::new(3, 61, 3);
        w.set_block_silent(pos, Block::simple(BlockKind::Stone));
        assert_eq!(apply_random_tick(&mut w, pos), GrowthOutcome::default());
        assert!(!reacts_to_random_tick(BlockKind::Stone));
        assert!(reacts_to_random_tick(BlockKind::Kelp));
    }
}
