//! Dynamic lighting recomputation.
//!
//! The paper (Section 2.2.2) uses lighting as the canonical example of a
//! terrain-simulation workload that static game worlds do not have: "Once the
//! bridge has collapsed, the bridge no longer casts shadow, so the simulator
//! needs to recompute lighting (frequently) at runtime."
//!
//! This module computes the *cost* of relighting after a block change by
//! performing the same traversals a real engine would perform — a sky-light
//! column scan plus a breadth-first flood through transparent blocks around
//! the change — and reports how many positions were visited. Light values are
//! recomputed on demand rather than persisted per block; persisting them
//! would only change memory usage, not the simulated per-tick work that
//! Meterstick measures.
//!
//! Substrate notes (modeled output is unaffected by either):
//!
//! * [`sky_light_at`] consults [`BlockReader::column_top`] so the vertical
//!   scan starts at the column's highest non-air block instead of
//!   [`WORLD_HEIGHT`] — everything above the heightmap is air with zero
//!   opacity, so skipping it cannot change the result;
//! * the flood fill tracks visited positions in a fixed-size bitmask over
//!   the `17³` offset cube reachable within [`LIGHT_FLOOD_RADIUS`]
//!   ([`FloodScratch`]), reusable across floods so steady-state relighting
//!   allocates nothing.

use std::collections::VecDeque;

use crate::chunk::WORLD_HEIGHT;
use crate::pos::BlockPos;
use crate::shard::BlockReader;

/// Maximum light level (fully lit).
pub const MAX_LIGHT: u8 = 15;

/// Default propagation radius used for block-light floods.
pub const LIGHT_FLOOD_RADIUS: u32 = 8;

/// Edge length of the offset cube a flood can reach (Chebyshev radius 8).
const FLOOD_CUBE: usize = 2 * LIGHT_FLOOD_RADIUS as usize + 1;

/// `u64` words in the visited bitmask covering the offset cube.
const FLOOD_WORDS: usize = (FLOOD_CUBE * FLOOD_CUBE * FLOOD_CUBE).div_ceil(64);

/// Report of a relighting pass around one block change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LightReport {
    /// Positions visited by the sky-light column scan.
    pub sky_positions: u32,
    /// Positions visited by the block-light flood fill.
    pub flood_positions: u32,
}

impl LightReport {
    /// Total number of positions visited by the relighting pass.
    #[must_use]
    pub fn total_positions(&self) -> u32 {
        self.sky_positions + self.flood_positions
    }
}

/// Reusable scratch state for [`relight_after_change_with`] flood fills.
///
/// The visited set is a bitmask over the `17×17×17` offset cube centred on
/// the flood origin (every reachable position is within Chebyshev distance
/// [`LIGHT_FLOOD_RADIUS`] of it), so clearing it between floods is a 77-word
/// memset rather than a hash-set teardown, and the queue keeps its capacity
/// across floods.
#[derive(Debug, Clone)]
pub struct FloodScratch {
    visited: [u64; FLOOD_WORDS],
    queue: VecDeque<(BlockPos, u32)>,
}

impl FloodScratch {
    /// Creates an empty scratch. One instance serves any number of floods.
    #[must_use]
    pub fn new() -> Self {
        FloodScratch {
            visited: [0; FLOOD_WORDS],
            queue: VecDeque::new(),
        }
    }

    fn reset(&mut self) {
        self.visited = [0; FLOOD_WORDS];
        self.queue.clear();
    }

    /// Marks `p` (relative to `origin`) visited; returns `true` if it was
    /// not visited before.
    fn mark(&mut self, origin: BlockPos, p: BlockPos) -> bool {
        let r = LIGHT_FLOOD_RADIUS as i32;
        let dx = (p.x - origin.x + r) as usize;
        let dy = (p.y - origin.y + r) as usize;
        let dz = (p.z - origin.z + r) as usize;
        let bit = (dy * FLOOD_CUBE + dz) * FLOOD_CUBE + dx;
        let word = &mut self.visited[bit / 64];
        let mask = 1u64 << (bit % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    fn contains(&self, origin: BlockPos, p: BlockPos) -> bool {
        let r = LIGHT_FLOOD_RADIUS as i32;
        let dx = (p.x - origin.x + r) as usize;
        let dy = (p.y - origin.y + r) as usize;
        let dz = (p.z - origin.z + r) as usize;
        let bit = (dy * FLOOD_CUBE + dz) * FLOOD_CUBE + dx;
        self.visited[bit / 64] & (1u64 << (bit % 64)) != 0
    }
}

impl Default for FloodScratch {
    fn default() -> Self {
        FloodScratch::new()
    }
}

/// Computes the sky-light level at a position: 15 if nothing opaque is above
/// it, otherwise attenuated by the opacity of the blocks above.
///
/// When the reader exposes a maintained heightmap
/// ([`BlockReader::column_top`]), the scan starts at the column's highest
/// non-air block rather than the top of the world; the skipped blocks are
/// all air and contribute zero opacity, so the returned level is identical.
#[must_use]
pub fn sky_light_at<W: BlockReader>(world: &mut W, pos: BlockPos) -> u8 {
    if pos.y + 1 >= WORLD_HEIGHT as i32 {
        // Nothing can sit above the world ceiling; bail before consulting the
        // heightmap so a top-of-world probe touches no chunks at all.
        return MAX_LIGHT;
    }
    let top = match world.column_top(pos.x, pos.z) {
        Some(top) => top.min(WORLD_HEIGHT as i32 - 1),
        None => WORLD_HEIGHT as i32 - 1,
    };
    let mut light = i32::from(MAX_LIGHT);
    for y in (pos.y + 1)..=top {
        let b = world.block(BlockPos::new(pos.x, y, pos.z));
        light -= i32::from(b.kind().light_opacity());
        if light <= 0 {
            return 0;
        }
    }
    light as u8
}

/// Recomputes lighting after a change at `pos` and returns the work report.
///
/// Convenience wrapper over [`relight_after_change_with`] that allocates a
/// fresh [`FloodScratch`]; hot paths hold a reusable scratch instead.
pub fn relight_after_change<W: BlockReader>(world: &mut W, pos: BlockPos) -> LightReport {
    relight_after_change_with(world, pos, &mut FloodScratch::new())
}

/// Recomputes lighting after a change at `pos` using caller-provided scratch
/// state, and returns the work report.
///
/// The pass has two parts, mirroring real MLG engines:
///
/// * a vertical sky-light rescan of the changed column (the shadow cast by the
///   block has changed), and
/// * a breadth-first flood from the changed position through transparent
///   blocks, bounded by [`LIGHT_FLOOD_RADIUS`], representing block-light
///   propagation from or towards nearby emitters.
pub fn relight_after_change_with<W: BlockReader>(
    world: &mut W,
    pos: BlockPos,
    scratch: &mut FloodScratch,
) -> LightReport {
    let mut report = LightReport::default();

    // Sky-light column rescan: from the top of the world down to the lowest
    // block the change could have shadowed.
    let top = WORLD_HEIGHT as i32;
    let bottom = (pos.y - 16).max(0);
    report.sky_positions = (top - bottom) as u32;

    // Block-light flood through transparent space.
    scratch.reset();
    scratch.queue.push_back((pos, 0));
    scratch.mark(pos, pos);
    while let Some((current, depth)) = scratch.queue.pop_front() {
        report.flood_positions += 1;
        if depth >= LIGHT_FLOOD_RADIUS {
            continue;
        }
        for n in current.neighbors() {
            if n.y < 0 || n.y >= WORLD_HEIGHT as i32 || scratch.contains(pos, n) {
                continue;
            }
            let b = world.block(n);
            // Light propagates through anything that is not fully opaque.
            if b.kind().light_opacity() < MAX_LIGHT {
                scratch.mark(pos, n);
                scratch.queue.push_back((n, depth + 1));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockKind};
    use crate::generation::FlatGenerator;
    use crate::world::World;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn open_sky_is_fully_lit() {
        let mut w = world();
        assert_eq!(sky_light_at(&mut w, BlockPos::new(0, 61, 0)), MAX_LIGHT);
    }

    #[test]
    fn underground_is_dark() {
        let mut w = world();
        assert_eq!(sky_light_at(&mut w, BlockPos::new(0, 30, 0)), 0);
    }

    #[test]
    fn single_cover_block_shadows_column() {
        let mut w = world();
        let pos = BlockPos::new(5, 61, 5);
        assert_eq!(sky_light_at(&mut w, pos), MAX_LIGHT);
        w.set_block_silent(pos.offset(0, 5, 0), Block::simple(BlockKind::Stone));
        assert_eq!(sky_light_at(&mut w, pos), 0);
    }

    #[test]
    fn leaves_attenuate_partially() {
        let mut w = world();
        let pos = BlockPos::new(5, 61, 5);
        w.set_block_silent(pos.offset(0, 5, 0), Block::simple(BlockKind::Leaves));
        assert_eq!(sky_light_at(&mut w, pos), MAX_LIGHT - 1);
    }

    #[test]
    fn relight_in_open_air_floods_widely() {
        let mut w = world();
        let report = relight_after_change(&mut w, BlockPos::new(0, 90, 0));
        assert!(
            report.flood_positions > 100,
            "open air flood should visit many positions"
        );
        assert!(report.sky_positions > 0);
    }

    #[test]
    fn relight_underground_is_cheap() {
        let mut w = world();
        // Fully enclosed in stone: the flood cannot expand.
        let report = relight_after_change(&mut w, BlockPos::new(0, 30, 0));
        assert_eq!(report.flood_positions, 1);
    }

    #[test]
    fn surface_change_costs_less_than_open_air() {
        let mut w = world();
        let surface = relight_after_change(&mut w, BlockPos::new(0, 61, 0));
        let open_air = relight_after_change(&mut w, BlockPos::new(0, 100, 0));
        assert!(surface.flood_positions < open_air.flood_positions);
    }

    #[test]
    fn report_total_is_sum() {
        let r = LightReport {
            sky_positions: 10,
            flood_positions: 32,
        };
        assert_eq!(r.total_positions(), 42);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let mut w = world();
        let mut scratch = FloodScratch::new();
        for pos in [
            BlockPos::new(0, 90, 0),
            BlockPos::new(0, 30, 0),
            BlockPos::new(3, 61, 3),
            BlockPos::new(0, 90, 0),
        ] {
            let reused = relight_after_change_with(&mut w, pos, &mut scratch);
            let fresh = relight_after_change(&mut w, pos);
            assert_eq!(reused, fresh, "scratch reuse diverged at {pos:?}");
        }
    }

    /// A reader that counts `block` calls while forwarding the heightmap,
    /// pinning how many positions the sky scan actually visits.
    struct CountingReader<'a> {
        inner: &'a mut World,
        block_reads: u32,
    }

    impl BlockReader for CountingReader<'_> {
        fn block(&mut self, pos: BlockPos) -> Block {
            self.block_reads += 1;
            self.inner.block(pos)
        }

        fn column_top(&mut self, x: i32, z: i32) -> Option<i32> {
            self.inner.column_top(x, z)
        }
    }

    #[test]
    fn sky_scan_above_surface_reads_no_blocks() {
        let mut w = world();
        let surface = w.highest_block_y(0, 0).expect("generated column");
        let mut reader = CountingReader {
            inner: &mut w,
            block_reads: 0,
        };
        // Everything above the heightmap is air: the scan short-circuits.
        let light = sky_light_at(&mut reader, BlockPos::new(0, surface + 1, 0));
        assert_eq!(light, MAX_LIGHT);
        assert_eq!(
            reader.block_reads, 0,
            "scan above the heightmap must not read blocks"
        );
    }

    #[test]
    fn sky_scan_is_bounded_by_the_heightmap() {
        let mut w = world();
        let surface = w.highest_block_y(3, 3).expect("generated column");
        let pos = BlockPos::new(3, surface - 2, 3);
        let mut reader = CountingReader {
            inner: &mut w,
            block_reads: 0,
        };
        let light = sky_light_at(&mut reader, pos);
        // Only the two covering blocks (surface-1, surface) are visited —
        // the legacy scan would read up to WORLD_HEIGHT.
        assert!(reader.block_reads <= 2, "reads: {}", reader.block_reads);
        // Same result as a reader without a heightmap (full scan).
        struct NoHeightmap<'a>(&'a mut World);
        impl BlockReader for NoHeightmap<'_> {
            fn block(&mut self, pos: BlockPos) -> Block {
                self.0.block(pos)
            }
        }
        assert_eq!(light, sky_light_at(&mut NoHeightmap(&mut w), pos));
    }
}
