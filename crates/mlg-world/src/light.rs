//! Dynamic lighting recomputation.
//!
//! The paper (Section 2.2.2) uses lighting as the canonical example of a
//! terrain-simulation workload that static game worlds do not have: "Once the
//! bridge has collapsed, the bridge no longer casts shadow, so the simulator
//! needs to recompute lighting (frequently) at runtime."
//!
//! This module computes the *cost* of relighting after a block change by
//! performing the same traversals a real engine would perform — a sky-light
//! column scan plus a breadth-first flood through transparent blocks around
//! the change — and reports how many positions were visited. Light values are
//! recomputed on demand rather than persisted per block; persisting them
//! would only change memory usage, not the simulated per-tick work that
//! Meterstick measures.

use std::collections::{HashSet, VecDeque};

use crate::chunk::WORLD_HEIGHT;
use crate::pos::BlockPos;
use crate::shard::BlockReader;

/// Maximum light level (fully lit).
pub const MAX_LIGHT: u8 = 15;

/// Default propagation radius used for block-light floods.
pub const LIGHT_FLOOD_RADIUS: u32 = 8;

/// Report of a relighting pass around one block change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LightReport {
    /// Positions visited by the sky-light column scan.
    pub sky_positions: u32,
    /// Positions visited by the block-light flood fill.
    pub flood_positions: u32,
}

impl LightReport {
    /// Total number of positions visited by the relighting pass.
    #[must_use]
    pub fn total_positions(&self) -> u32 {
        self.sky_positions + self.flood_positions
    }
}

/// Computes the sky-light level at a position: 15 if nothing opaque is above
/// it, otherwise attenuated by the opacity of the blocks above.
#[must_use]
pub fn sky_light_at<W: BlockReader>(world: &mut W, pos: BlockPos) -> u8 {
    let mut light = i32::from(MAX_LIGHT);
    for y in (pos.y + 1)..WORLD_HEIGHT as i32 {
        let b = world.block(BlockPos::new(pos.x, y, pos.z));
        light -= i32::from(b.kind().light_opacity());
        if light <= 0 {
            return 0;
        }
    }
    light as u8
}

/// Recomputes lighting after a change at `pos` and returns the work report.
///
/// The pass has two parts, mirroring real MLG engines:
///
/// * a vertical sky-light rescan of the changed column (the shadow cast by the
///   block has changed), and
/// * a breadth-first flood from the changed position through transparent
///   blocks, bounded by [`LIGHT_FLOOD_RADIUS`], representing block-light
///   propagation from or towards nearby emitters.
pub fn relight_after_change<W: BlockReader>(world: &mut W, pos: BlockPos) -> LightReport {
    let mut report = LightReport::default();

    // Sky-light column rescan: from the top of the world down to the lowest
    // block the change could have shadowed.
    let top = WORLD_HEIGHT as i32;
    let bottom = (pos.y - 16).max(0);
    report.sky_positions = (top - bottom) as u32;

    // Block-light flood through transparent space.
    let mut visited: HashSet<BlockPos> = HashSet::new();
    let mut queue: VecDeque<(BlockPos, u32)> = VecDeque::new();
    queue.push_back((pos, 0));
    visited.insert(pos);
    while let Some((current, depth)) = queue.pop_front() {
        report.flood_positions += 1;
        if depth >= LIGHT_FLOOD_RADIUS {
            continue;
        }
        for n in current.neighbors() {
            if n.y < 0 || n.y >= WORLD_HEIGHT as i32 || visited.contains(&n) {
                continue;
            }
            let b = world.block(n);
            // Light propagates through anything that is not fully opaque.
            if b.kind().light_opacity() < MAX_LIGHT {
                visited.insert(n);
                queue.push_back((n, depth + 1));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockKind};
    use crate::generation::FlatGenerator;
    use crate::world::World;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn open_sky_is_fully_lit() {
        let mut w = world();
        assert_eq!(sky_light_at(&mut w, BlockPos::new(0, 61, 0)), MAX_LIGHT);
    }

    #[test]
    fn underground_is_dark() {
        let mut w = world();
        assert_eq!(sky_light_at(&mut w, BlockPos::new(0, 30, 0)), 0);
    }

    #[test]
    fn single_cover_block_shadows_column() {
        let mut w = world();
        let pos = BlockPos::new(5, 61, 5);
        assert_eq!(sky_light_at(&mut w, pos), MAX_LIGHT);
        w.set_block_silent(pos.offset(0, 5, 0), Block::simple(BlockKind::Stone));
        assert_eq!(sky_light_at(&mut w, pos), 0);
    }

    #[test]
    fn leaves_attenuate_partially() {
        let mut w = world();
        let pos = BlockPos::new(5, 61, 5);
        w.set_block_silent(pos.offset(0, 5, 0), Block::simple(BlockKind::Leaves));
        assert_eq!(sky_light_at(&mut w, pos), MAX_LIGHT - 1);
    }

    #[test]
    fn relight_in_open_air_floods_widely() {
        let mut w = world();
        let report = relight_after_change(&mut w, BlockPos::new(0, 90, 0));
        assert!(
            report.flood_positions > 100,
            "open air flood should visit many positions"
        );
        assert!(report.sky_positions > 0);
    }

    #[test]
    fn relight_underground_is_cheap() {
        let mut w = world();
        // Fully enclosed in stone: the flood cannot expand.
        let report = relight_after_change(&mut w, BlockPos::new(0, 30, 0));
        assert_eq!(report.flood_positions, 1);
    }

    #[test]
    fn surface_change_costs_less_than_open_air() {
        let mut w = world();
        let surface = relight_after_change(&mut w, BlockPos::new(0, 61, 0));
        let open_air = relight_after_change(&mut w, BlockPos::new(0, 100, 0));
        assert!(surface.flood_positions < open_air.flood_positions);
    }

    #[test]
    fn report_total_is_sum() {
        let r = LightReport {
            sky_positions: 10,
            flood_positions: 32,
        };
        assert_eq!(r.total_positions(), 42);
    }
}
