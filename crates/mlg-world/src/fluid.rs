//! Fluid simulation: water and lava spreading plus fluid interactions.
//!
//! Fluids are one of the terrain-simulation physics components listed in the
//! paper's workload model (Figure 3). Stone and cobblestone resource farms
//! rely on the interaction rule (water touching lava produces stone or
//! cobblestone), and kelp/item farms use flowing water to transport item
//! entities.

use crate::block::{Block, BlockKind};
use crate::pos::BlockPos;
use crate::shard::TerrainView;

/// Maximum horizontal flow level: level 0 is a source, levels 1..=MAX_LEVEL
/// are flowing fluid that gets shallower with distance.
pub const MAX_FLOW_LEVEL: u8 = 7;

/// Tick delay between water spread steps.
pub const WATER_SPREAD_DELAY: u64 = 5;

/// Tick delay between lava spread steps (lava flows slower than water).
pub const LAVA_SPREAD_DELAY: u64 = 10;

/// Result of one fluid update at a position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FluidOutcome {
    /// Number of new fluid blocks placed by this update.
    pub spread_to: u32,
    /// Number of solidification events (water+lava interactions).
    pub solidified: u32,
    /// Number of neighbouring positions inspected.
    pub blocks_scanned: u32,
    /// Whether a follow-up scheduled tick was requested.
    pub rescheduled: bool,
}

/// Returns the spread delay in ticks for a fluid kind.
///
/// # Panics
///
/// Panics if `kind` is not a fluid.
#[must_use]
pub fn spread_delay(kind: BlockKind) -> u64 {
    match kind {
        BlockKind::Water => WATER_SPREAD_DELAY,
        BlockKind::Lava => LAVA_SPREAD_DELAY,
        other => panic!("{other} is not a fluid"),
    }
}

fn other_fluid(kind: BlockKind) -> BlockKind {
    match kind {
        BlockKind::Water => BlockKind::Lava,
        _ => BlockKind::Water,
    }
}

/// The block produced when `kind` (the fluid being updated) meets the other
/// fluid: lava touched by water becomes obsidian (source) or cobblestone
/// (flowing); water flowing onto lava becomes stone.
fn solidification_product(kind: BlockKind, other_state: u8) -> BlockKind {
    match kind {
        BlockKind::Water => {
            if other_state == 0 {
                BlockKind::Obsidian
            } else {
                BlockKind::Cobblestone
            }
        }
        _ => BlockKind::Stone,
    }
}

/// Applies the fluid rule at `pos`.
///
/// The rule, modelled on Minecraft's behaviour but simplified to one state
/// byte per block:
///
/// 1. If the fluid can flow straight down it does so (level resets to 1).
/// 2. Otherwise it spreads to horizontally adjacent air blocks with
///    `level + 1`, up to [`MAX_FLOW_LEVEL`].
/// 3. Flowing fluid whose source has disappeared dries up.
/// 4. Contact with the opposing fluid solidifies into
///    stone/cobblestone/obsidian.
///
/// Every spread step schedules a follow-up tick so flows advance over time
/// rather than instantaneously, matching the cascade-of-updates behaviour the
/// paper identifies as a variability source.
pub fn apply_fluid<W: TerrainView>(world: &mut W, pos: BlockPos) -> FluidOutcome {
    let mut outcome = FluidOutcome::default();
    let block = world.block(pos);
    let kind = block.kind();
    if !kind.is_fluid() {
        return outcome;
    }
    let level = block.state();

    // Rule 4: solidify on contact with the opposing fluid.
    for n in pos.neighbors() {
        let nb = world.block(n);
        outcome.blocks_scanned += 1;
        if nb.kind() == other_fluid(kind) {
            let product = solidification_product(kind, nb.state());
            world.set_block(n, Block::simple(product));
            outcome.solidified += 1;
        }
    }

    // Rule 3: flowing fluid with no adjacent shallower fluid dries up.
    if level > 0 {
        let fed = pos.horizontal_neighbors().iter().any(|&n| {
            let nb = world.block(n);
            nb.kind() == kind && nb.state() < level
        }) || {
            let above = world.block(pos.up());
            above.kind() == kind
        };
        outcome.blocks_scanned += 5;
        if !fed {
            world.set_block(pos, Block::AIR);
            return outcome;
        }
    }

    // Rule 1: flow down.
    let below = pos.down();
    let below_block = world.block(below);
    outcome.blocks_scanned += 1;
    if below_block.is_air() {
        world.set_block(below, Block::with_state(kind, 1));
        world.schedule_tick(below, spread_delay(kind));
        outcome.spread_to += 1;
        outcome.rescheduled = true;
        return outcome;
    }

    // Rule 2: spread horizontally.
    if level < MAX_FLOW_LEVEL {
        for n in pos.horizontal_neighbors() {
            let nb = world.block(n);
            outcome.blocks_scanned += 1;
            if nb.is_air() {
                world.set_block(n, Block::with_state(kind, level + 1));
                world.schedule_tick(n, spread_delay(kind));
                outcome.spread_to += 1;
                outcome.rescheduled = true;
            }
        }
    }
    outcome
}

/// Block kinds that the fluid rule reacts to.
#[must_use]
pub fn reacts_to_updates(kind: BlockKind) -> bool {
    kind.is_fluid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;
    use crate::world::World;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn water_flows_down_first() {
        let mut w = world();
        let pos = BlockPos::new(4, 70, 4);
        w.set_block_silent(pos, Block::simple(BlockKind::Water));
        let out = apply_fluid(&mut w, pos);
        assert_eq!(out.spread_to, 1);
        assert_eq!(w.block(pos.down()).kind(), BlockKind::Water);
        assert_eq!(w.block(pos.down()).state(), 1);
        // No horizontal spread while falling.
        assert_eq!(w.block(pos.offset(1, 0, 0)), Block::AIR);
    }

    #[test]
    fn water_spreads_horizontally_on_the_ground() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4); // resting on the grass surface
        w.set_block_silent(pos, Block::simple(BlockKind::Water));
        let out = apply_fluid(&mut w, pos);
        assert_eq!(out.spread_to, 4);
        for n in pos.horizontal_neighbors() {
            assert_eq!(w.block(n).kind(), BlockKind::Water);
            assert_eq!(w.block(n).state(), 1);
        }
    }

    #[test]
    fn flow_level_increases_with_distance_and_stops() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(pos, Block::with_state(BlockKind::Water, MAX_FLOW_LEVEL));
        // A max-level flow with a feeding neighbour spreads no further.
        w.set_block_silent(
            pos.offset(1, 0, 0),
            Block::with_state(BlockKind::Water, MAX_FLOW_LEVEL - 1),
        );
        let out = apply_fluid(&mut w, pos);
        assert_eq!(out.spread_to, 0);
    }

    #[test]
    fn unfed_flowing_water_dries_up() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(pos, Block::with_state(BlockKind::Water, 3));
        apply_fluid(&mut w, pos);
        assert_eq!(w.block(pos), Block::AIR);
    }

    #[test]
    fn water_meeting_lava_source_makes_obsidian() {
        let mut w = world();
        let water = BlockPos::new(4, 61, 4);
        let lava = water.offset(1, 0, 0);
        w.set_block_silent(water, Block::simple(BlockKind::Water));
        w.set_block_silent(lava, Block::simple(BlockKind::Lava));
        let out = apply_fluid(&mut w, water);
        assert_eq!(out.solidified, 1);
        assert_eq!(w.block(lava).kind(), BlockKind::Obsidian);
    }

    #[test]
    fn water_meeting_flowing_lava_makes_cobblestone() {
        let mut w = world();
        let water = BlockPos::new(4, 61, 4);
        let lava = water.offset(1, 0, 0);
        w.set_block_silent(water, Block::simple(BlockKind::Water));
        w.set_block_silent(lava, Block::with_state(BlockKind::Lava, 2));
        apply_fluid(&mut w, water);
        assert_eq!(w.block(lava).kind(), BlockKind::Cobblestone);
    }

    #[test]
    fn lava_meeting_water_makes_stone() {
        let mut w = world();
        let lava = BlockPos::new(4, 61, 4);
        let water = lava.offset(0, 0, 1);
        w.set_block_silent(lava, Block::simple(BlockKind::Lava));
        w.set_block_silent(water, Block::simple(BlockKind::Water));
        apply_fluid(&mut w, lava);
        assert_eq!(w.block(water).kind(), BlockKind::Stone);
    }

    #[test]
    fn spread_schedules_follow_up_ticks() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(pos, Block::simple(BlockKind::Water));
        let out = apply_fluid(&mut w, pos);
        assert!(out.rescheduled);
        assert!(w.updates().scheduled_len() >= 1);
    }

    #[test]
    fn lava_spreads_slower_than_water() {
        assert!(spread_delay(BlockKind::Lava) > spread_delay(BlockKind::Water));
    }

    #[test]
    #[should_panic(expected = "is not a fluid")]
    fn spread_delay_rejects_non_fluids() {
        let _ = spread_delay(BlockKind::Stone);
    }

    #[test]
    fn non_fluid_update_is_ignored() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(pos, Block::simple(BlockKind::Stone));
        let out = apply_fluid(&mut w, pos);
        assert_eq!(out, FluidOutcome::default());
    }
}
