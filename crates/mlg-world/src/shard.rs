//! Spatial chunk sharding: the partitioning layer of the sharded tick
//! pipeline.
//!
//! Folia-style MLG servers split the loaded world into independently ticked
//! regions. This module provides the deterministic partitioning primitives
//! the rest of the workspace builds on:
//!
//! * [`ShardMap`] — a pure function from chunk coordinates to shard index,
//!   in one of two modes:
//!   - **static stripes** ([`ShardMap::stripes`]): chunks are grouped into
//!     contiguous stripes of [`SHARD_STRIPE_CHUNKS`] columns along the x
//!     axis, assigned to shards round-robin (the PR 2 partition);
//!   - **adaptive 2D regions** ([`ShardMap::regions_over`]): a region
//!     quadtree over the chunk plane whose leaves are the shards, in
//!     canonical pre-order (NW, NE, SW, SE) leaf order. Leaves are square,
//!     at least [`MIN_REGION_CHUNKS`] chunks on a side, and can be split
//!     and merged between ticks by [`ShardMap::rebalanced`] — a **pure
//!     function of the previous tick's merged [`ShardLoadReport`]** with a
//!     hysteresis rule: the busiest splittable leaf is split when its load
//!     exceeds 2× the mean shard load, and the coldest all-leaf quad is
//!     merged back when its combined load falls below ½× the mean. The gap
//!     between the two thresholds prevents oscillation, and because the
//!     decision depends only on (map, report) — never on scheduling — the
//!     partition evolves identically at any worker-thread count.
//!
//!   In both modes a position is *interior* to its shard when every chunk
//!   in its 3×3 chunk neighbourhood maps to the same shard: every terrain
//!   rule in this crate reads and writes within 8 blocks of the update
//!   position it is dispatched for (cascades travel through queued updates,
//!   not in-dispatch traversal), so interior updates can be processed by
//!   concurrent shard workers without ever touching another shard's chunks.
//!   Boundary updates are escalated to a serial merge phase.
//! * [`TickPipeline`] — the execution configuration of one server: the
//!   current shard partition, whether it rebalances, and the worker thread
//!   count. Shard count and partition shape are part of the *simulated
//!   architecture* (they change scheduling and therefore the modeled
//!   execution, like Folia's region count does); thread count is pure
//!   execution infrastructure and never changes results: the sharded tick
//!   is bit-identical at any thread count by construction.
//! * [`BlockReader`] / [`TerrainView`] — the world-access traits the
//!   simulation rules are generic over, so the same rule code runs against
//!   the full [`World`], a read-only [`FrozenWorld`] snapshot, or a
//!   mutable single-shard view during the parallel phase.
//! * [`run_tasks`] — the *scoped* worker fan-out (crossbeam scoped threads
//!   and channels): spawns fresh threads for one phase and joins them at
//!   the end. Since the persistent [`TickWorkerPool`](crate::pool) landed this
//!   is the fallback path — used when no pool is attached or
//!   `tick_threads <= 1` — and the baseline the `worker_pool` bench group
//!   measures the pool against. Production tick phases go through
//!   [`TickPipeline::scope`], which dispatches onto the server's
//!   long-lived pool and avoids the per-phase spawn/join tax.
//!
//! # Determinism contract
//!
//! Every consumer of this module relies on the same three rules, which
//! together make the whole tick path **bit-identical at any worker-thread
//! count**, pool or scoped, rebalance on or off, lighting eager or
//! pipelined:
//!
//! 1. **Pure partitioning.** Chunk→shard assignment is a pure function of
//!    the chunk coordinates and the map structure; adaptive maps evolve
//!    only through [`ShardMap::rebalanced`], itself a pure function of the
//!    previous tick's *merged* load report.
//! 2. **Canonical merge order.** Parallel phases merge their per-shard
//!    results in ascending shard order, always, regardless of completion
//!    order; [`run_tasks`] and the pool both return tasks in input order.
//! 3. **Serial-tail escalation.** Work that could observe another shard —
//!    boundary-chunk updates, cross-shard player actions, world-mutating
//!    entity effects — never runs in the parallel phase at all; it is
//!    escalated to a serial tail that runs after the canonical merge, in a
//!    deterministic (ascending position/index) order of its own.

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::block::Block;
use crate::chunk::WORLD_HEIGHT;
use crate::generation::ChunkGenerator;
use crate::pool::{PoolHandle, PoolScope, TickWorkerPool};
use crate::pos::{BlockPos, ChunkPos};
use crate::update::BlockUpdate;
use crate::world::{BlockChange, ShardStore, World, WorldSnapshot};

/// Width of one shard stripe, in chunks, along the x axis.
///
/// Wider stripes mean a larger interior fraction (more parallel work) but
/// fewer distinct stripes to spread across shards; 4 chunks (64 blocks)
/// keeps both reasonable for the workload worlds of the paper.
pub const SHARD_STRIPE_CHUNKS: i32 = 4;

/// Minimum side length of an adaptive quadtree region, in chunks.
///
/// A region narrower than this would have no interior chunks at all (the
/// 3×3 neighbourhood test fails everywhere), turning its entire workload
/// into serial boundary escalation; splits stop above this floor.
pub const MIN_REGION_CHUNKS: i32 = 4;

/// Split threshold of the rebalancing hysteresis: a leaf is split when its
/// load exceeds this multiple of the mean shard load.
const SPLIT_LOAD_FACTOR: u64 = 2;

/// Merge threshold of the rebalancing hysteresis: an all-leaf quad is
/// merged when its combined load falls below the mean shard load divided by
/// this factor. Together with [`SPLIT_LOAD_FACTOR`] this leaves a wide dead
/// band (½× … 2× mean) so the partition cannot oscillate between ticks.
const MERGE_LOAD_DIVISOR: u64 = 2;

/// Work weight of one terrain update when folding stage counters into a
/// [`ShardLoadReport`] (matches the scheduled-update weight of the terrain
/// work model).
pub const TERRAIN_LOAD_WEIGHT: u64 = 14;

/// Work weight of one processed entity when folding stage counters into a
/// [`ShardLoadReport`] (matches the per-entity weight of the entity work
/// model — MF4: entity processing dominates non-idle tick time).
pub const ENTITY_LOAD_WEIGHT: u64 = 350;

/// One node of the region quadtree: a square of chunks, either a leaf (one
/// shard) or split into four equal quadrants. `leaves` caches the subtree's
/// leaf count so shard lookup is O(depth).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct QuadNode {
    x0: i32,
    z0: i32,
    size: i32,
    leaves: u32,
    children: Option<Box<[QuadNode; 4]>>,
}

impl QuadNode {
    fn leaf(x0: i32, z0: i32, size: i32) -> Self {
        QuadNode {
            x0,
            z0,
            size,
            leaves: 1,
            children: None,
        }
    }

    fn contains(&self, cx: i32, cz: i32) -> bool {
        cx >= self.x0 && cx < self.x0 + self.size && cz >= self.z0 && cz < self.z0 + self.size
    }

    /// Leaf index (in canonical pre-order) of the leaf containing the given
    /// chunk coordinates, which must lie inside this node.
    fn leaf_index_of(&self, cx: i32, cz: i32) -> usize {
        let mut node = self;
        let mut index = 0usize;
        'descend: while let Some(children) = node.children.as_deref() {
            for child in children {
                if child.contains(cx, cz) {
                    node = child;
                    continue 'descend;
                }
                index += child.leaves as usize;
            }
            unreachable!("quadrants tile their parent");
        }
        index
    }

    /// Appends every leaf square as `(x0, z0, size)`, in canonical order.
    fn collect_leaves(&self, out: &mut Vec<(i32, i32, i32)>) {
        match self.children.as_deref() {
            None => out.push((self.x0, self.z0, self.size)),
            Some(children) => {
                for child in children {
                    child.collect_leaves(out);
                }
            }
        }
    }

    /// Appends the starting leaf index of every internal node whose four
    /// children are all leaves (the merge candidates), in canonical order.
    fn collect_merge_starts(&self, base: u32, out: &mut Vec<u32>) {
        if let Some(children) = self.children.as_deref() {
            if children.iter().all(|c| c.children.is_none()) {
                out.push(base);
            } else {
                let mut b = base;
                for child in children {
                    child.collect_merge_starts(b, out);
                    b += child.leaves;
                }
            }
        }
    }

    /// Splits the leaf at `index` (subtree-relative) into four quadrants.
    /// Returns `false` when the leaf is already at the minimum size.
    fn split_leaf(&mut self, index: u32) -> bool {
        if self.children.is_none() {
            debug_assert_eq!(index, 0, "leaf index exhausted at a leaf");
            if self.size < 2 * MIN_REGION_CHUNKS {
                return false;
            }
            let h = self.size / 2;
            self.children = Some(Box::new([
                QuadNode::leaf(self.x0, self.z0, h),
                QuadNode::leaf(self.x0 + h, self.z0, h),
                QuadNode::leaf(self.x0, self.z0 + h, h),
                QuadNode::leaf(self.x0 + h, self.z0 + h, h),
            ]));
            self.leaves = 4;
            return true;
        }
        let mut base = index;
        let mut split = false;
        for child in self.children.as_deref_mut().expect("checked above") {
            if base < child.leaves {
                split = child.split_leaf(base);
                break;
            }
            base -= child.leaves;
        }
        if split {
            self.recount();
        }
        split
    }

    /// Merges the all-leaf quad whose first leaf has index `index`
    /// (subtree-relative) back into a single leaf.
    fn merge_quad(&mut self, index: u32) -> bool {
        let is_this_quad = match self.children.as_deref() {
            None => return false,
            Some(children) => index == 0 && children.iter().all(|c| c.children.is_none()),
        };
        if is_this_quad {
            self.children = None;
            self.leaves = 1;
            return true;
        }
        let mut base = index;
        let mut merged = false;
        for child in self.children.as_deref_mut().expect("checked above") {
            if base < child.leaves {
                merged = child.merge_quad(base);
                break;
            }
            base -= child.leaves;
        }
        if merged {
            self.recount();
        }
        merged
    }

    fn recount(&mut self) {
        if let Some(children) = self.children.as_deref() {
            self.leaves = children.iter().map(|c| c.leaves).sum();
        }
    }
}

/// The two partition modes a [`ShardMap`] can be in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Partition {
    /// Static round-robin x-stripes (the PR 2 partition).
    Stripes { count: u32 },
    /// Adaptive 2D quadtree regions.
    Regions { root: QuadNode },
}

/// Per-shard load observed during one tick, used to drive rebalancing.
///
/// The report is assembled from the pipeline's *merged* per-shard counters
/// (which are bit-identical at any thread count), so every consumer — the
/// compute model's busiest-shard floor and the quadtree rebalancer — sees
/// the same numbers regardless of execution parallelism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoadReport {
    loads: Vec<u64>,
}

impl ShardLoadReport {
    /// Wraps raw per-shard load values (index = shard index).
    #[must_use]
    pub fn new(loads: Vec<u64>) -> Self {
        ShardLoadReport { loads }
    }

    /// Folds the terrain stage's per-shard update counts and the entity
    /// stage's per-shard entity counts into one weighted load per shard.
    ///
    /// # Panics
    ///
    /// Panics when the two slices disagree on the shard count.
    #[must_use]
    pub fn from_stage_work(terrain_updates: &[u64], entities: &[u64]) -> Self {
        assert_eq!(
            terrain_updates.len(),
            entities.len(),
            "terrain and entity stages must report the same shard count"
        );
        ShardLoadReport {
            loads: terrain_updates
                .iter()
                .zip(entities)
                .map(|(t, e)| t * TERRAIN_LOAD_WEIGHT + e * ENTITY_LOAD_WEIGHT)
                .collect(),
        }
    }

    /// Folds the player-handler stage's per-shard work units into the
    /// report. Player work arrives already in work units (the stage's
    /// `base_work_units`), so no extra weight applies — a shard crowded
    /// with acting players counts as hot exactly like one crowded with
    /// entities, and the rebalancer splits it the same way.
    ///
    /// # Panics
    ///
    /// Panics when the slice disagrees with the report's shard count.
    pub fn fold_player_work(&mut self, player_units: &[u64]) {
        assert_eq!(
            player_units.len(),
            self.loads.len(),
            "player stage must report the same shard count"
        );
        for (load, units) in self.loads.iter_mut().zip(player_units) {
            *load += units;
        }
    }

    /// The per-shard loads (index = shard index).
    #[must_use]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Sum of all shard loads.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// The busiest shard's load (0 for an empty report).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }
}

/// Deterministic assignment of chunks to spatial shards.
///
/// The mapping is a pure function of the chunk coordinates and the map's
/// own structure — independent of load order, thread count and execution
/// history — which is the foundation of the pipeline's bit-identical
/// parallelism. Static stripe maps never change; adaptive region maps
/// evolve only through [`ShardMap::rebalanced`], itself a pure function of
/// the previous tick's merged load report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    partition: Partition,
}

impl ShardMap {
    /// Creates a static stripe map over `count` shards (clamped to at least
    /// 1). Alias of [`ShardMap::stripes`], kept for the PR 2 call sites.
    #[must_use]
    pub fn new(count: u32) -> Self {
        ShardMap::stripes(count)
    }

    /// Creates a static stripe map over `count` shards (clamped to at least
    /// 1).
    #[must_use]
    pub fn stripes(count: u32) -> Self {
        ShardMap {
            partition: Partition::Stripes {
                count: count.max(1),
            },
        }
    }

    /// Creates a single-region adaptive map whose root square covers the
    /// given inclusive chunk bounds (or a default 16×16-chunk square around
    /// the origin when `bounds` is `None` — e.g. for a world with no loaded
    /// chunks yet). Chunks outside the root are clamped onto its edge
    /// shards, so the map is total over the chunk plane.
    #[must_use]
    pub fn regions_over(bounds: Option<(ChunkPos, ChunkPos)>) -> Self {
        let (min, max) = bounds.unwrap_or((ChunkPos::new(-8, -8), ChunkPos::new(7, 7)));
        let extent = (max.x.saturating_sub(min.x) + 1)
            .max(max.z.saturating_sub(min.z) + 1)
            .max(2 * MIN_REGION_CHUNKS);
        // Next power of two, capped so x0 + size cannot overflow for any
        // realistic world (2^20 chunks = 16 Mblocks across).
        let size = (extent as u32).next_power_of_two().min(1 << 20) as i32;
        ShardMap {
            partition: Partition::Regions {
                root: QuadNode::leaf(min.x, min.z, size),
            },
        }
    }

    /// Returns `true` for adaptive region maps (the ones
    /// [`ShardMap::rebalanced`] can evolve).
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        matches!(self.partition, Partition::Regions { .. })
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        match &self.partition {
            Partition::Stripes { count } => *count as usize,
            Partition::Regions { root } => root.leaves as usize,
        }
    }

    /// The shard owning the given chunk.
    #[must_use]
    pub fn shard_of_chunk(&self, chunk: ChunkPos) -> usize {
        match &self.partition {
            Partition::Stripes { count } => chunk
                .x
                .div_euclid(SHARD_STRIPE_CHUNKS)
                .rem_euclid(*count as i32) as usize,
            Partition::Regions { root } => {
                let cx = chunk.x.clamp(root.x0, root.x0 + root.size - 1);
                let cz = chunk.z.clamp(root.z0, root.z0 + root.size - 1);
                root.leaf_index_of(cx, cz)
            }
        }
    }

    /// The shard owning the chunk containing the given block.
    #[must_use]
    pub fn shard_of_block(&self, pos: BlockPos) -> usize {
        self.shard_of_chunk(pos.chunk())
    }

    /// Returns `Some(shard)` when `chunk` *and its full 3×3 chunk
    /// neighbourhood* belong to the same shard — the condition under which
    /// a terrain rule dispatched inside `chunk` is guaranteed never to read
    /// or write another shard's chunks (rule footprints are bounded by 8
    /// blocks; see the module docs). Returns `None` for boundary chunks,
    /// whose updates must be processed in the serial merge phase.
    #[must_use]
    pub fn interior_shard(&self, chunk: ChunkPos) -> Option<usize> {
        let owner = self.shard_of_chunk(chunk);
        for dx in -1..=1 {
            for dz in -1..=1 {
                if self.shard_of_chunk(ChunkPos::new(chunk.x + dx, chunk.z + dz)) != owner {
                    return None;
                }
            }
        }
        Some(owner)
    }

    /// [`ShardMap::interior_shard`] for the chunk containing a block.
    #[must_use]
    pub fn interior_shard_of_block(&self, pos: BlockPos) -> Option<usize> {
        self.interior_shard(pos.chunk())
    }

    /// The leaf squares of an adaptive map as `(x0, z0, size)` in shard
    /// order; empty for stripe maps. Intended for tests, diagnostics and
    /// partition visualization.
    #[must_use]
    pub fn region_rects(&self) -> Vec<(i32, i32, i32)> {
        match &self.partition {
            Partition::Stripes { .. } => Vec::new(),
            Partition::Regions { root } => {
                let mut rects = Vec::with_capacity(root.leaves as usize);
                root.collect_leaves(&mut rects);
                rects
            }
        }
    }

    /// One rebalancing step: a **pure function** of `(self, report)`.
    ///
    /// Returns the next partition when the hysteresis rule fires, `None`
    /// when the partition is already balanced (or the map is a static
    /// stripe map, the report is empty/stale, or no eligible candidate
    /// exists). At most one operation happens per step, preferring splits:
    ///
    /// 1. **Split** the busiest leaf whose load exceeds
    ///    `SPLIT_LOAD_FACTOR` (2)× the mean shard load (a lone leaf holds
    ///    the whole load by definition and splits under any load at all),
    ///    provided its children would stay at least [`MIN_REGION_CHUNKS`]
    ///    wide and the leaf count stays within `max_shards`.
    /// 2. Otherwise **merge** the coldest quad of four sibling leaves whose
    ///    combined load is below the mean divided by `MERGE_LOAD_DIVISOR`
    ///    (2).
    ///
    /// Ties break toward the lowest shard index, so the step is fully
    /// deterministic.
    #[must_use]
    pub fn rebalanced(&self, report: &ShardLoadReport, max_shards: u32) -> Option<ShardMap> {
        let Partition::Regions { root } = &self.partition else {
            return None;
        };
        let loads = report.loads();
        if loads.len() != self.count() {
            return None; // stale report from a different partition
        }
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return None;
        }
        let count = self.count() as u64;

        // Split phase. A lone leaf carries the whole load by definition
        // (its share can never exceed the mean), so any load at all splits
        // it; from two shards up the hysteresis threshold applies.
        if self.count() as u32 + 3 <= max_shards {
            let mut rects = Vec::with_capacity(self.count());
            root.collect_leaves(&mut rects);
            let mut candidate: Option<(u32, u64)> = None;
            for (index, (_, _, size)) in rects.iter().enumerate() {
                if *size < 2 * MIN_REGION_CHUNKS {
                    continue;
                }
                let load = loads[index];
                let hot = count == 1 || load * count > SPLIT_LOAD_FACTOR * total;
                if hot && candidate.is_none_or(|(_, best)| load > best) {
                    candidate = Some((index as u32, load));
                }
            }
            if let Some((index, _)) = candidate {
                let mut next = root.clone();
                if next.split_leaf(index) {
                    return Some(ShardMap {
                        partition: Partition::Regions { root: next },
                    });
                }
            }
        }

        // Merge phase.
        let mut starts = Vec::new();
        root.collect_merge_starts(0, &mut starts);
        let mut candidate: Option<(u32, u64)> = None;
        for start in starts {
            let quad: u64 = loads[start as usize..start as usize + 4].iter().sum();
            if quad * count * MERGE_LOAD_DIVISOR < total
                && candidate.is_none_or(|(_, best)| quad < best)
            {
                candidate = Some((start, quad));
            }
        }
        if let Some((start, _)) = candidate {
            let mut next = root.clone();
            if next.merge_quad(start) {
                return Some(ShardMap {
                    partition: Partition::Regions { root: next },
                });
            }
        }
        None
    }

    /// Splits the largest splittable leaf (ties toward the lowest index);
    /// used to pre-split an adaptive map toward its target shard count
    /// before any load has been observed.
    fn split_largest_leaf(&self) -> Option<ShardMap> {
        let Partition::Regions { root } = &self.partition else {
            return None;
        };
        let mut rects = Vec::with_capacity(self.count());
        root.collect_leaves(&mut rects);
        let (index, _) = rects
            .iter()
            .enumerate()
            .filter(|(_, (_, _, size))| *size >= 2 * MIN_REGION_CHUNKS)
            .max_by(|(ai, (_, _, a)), (bi, (_, _, b))| a.cmp(b).then(bi.cmp(ai)))?;
        let mut next = root.clone();
        next.split_leaf(index as u32).then_some(ShardMap {
            partition: Partition::Regions { root: next },
        })
    }
}

/// Execution configuration of the sharded tick pipeline: the current shard
/// partition of the world, whether it rebalances between ticks, and how
/// many worker threads fan the per-shard work out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickPipeline {
    threads: u32,
    rebalance: bool,
    max_shards: u32,
    map: ShardMap,
    /// The server's persistent worker pool, when one is attached.
    /// Execution infrastructure only: [`PoolHandle`] always compares
    /// equal, so pipeline equality stays a statement about the modeled
    /// architecture. Clones share the pool.
    pool: PoolHandle,
}

impl Default for TickPipeline {
    fn default() -> Self {
        TickPipeline::serial()
    }
}

impl TickPipeline {
    /// Creates a static stripe pipeline (both values clamped to at least 1).
    #[must_use]
    pub fn new(shards: u32, threads: u32) -> Self {
        let shards = shards.max(1);
        TickPipeline {
            threads: threads.max(1),
            rebalance: false,
            max_shards: shards,
            map: ShardMap::stripes(shards),
            pool: PoolHandle::detached(),
        }
    }

    /// The classic single-shard, single-thread game loop.
    #[must_use]
    pub fn serial() -> Self {
        TickPipeline::new(1, 1)
    }

    /// Creates an adaptive pipeline whose quadtree root covers the given
    /// chunk bounds (see [`ShardMap::regions_over`]), pre-split toward
    /// `target_shards` leaves and allowed to grow to `2 × target_shards`
    /// leaves under load (the extra headroom is what lets hotspot regions
    /// split without starving the rest of the map of shards).
    ///
    /// A `target_shards` of 1 is degenerate: a split needs headroom for 3
    /// extra leaves, which a cap of 2 never grants, so the partition stays
    /// frozen at one region (serial-equivalent execution through the
    /// sharded path). Callers wanting an adaptive partition should pass a
    /// target of at least 2 — the server layer only builds adaptive
    /// pipelines for profiles with `tick_shards > 1`.
    #[must_use]
    pub fn adaptive(
        bounds: Option<(ChunkPos, ChunkPos)>,
        target_shards: u32,
        threads: u32,
    ) -> Self {
        let target = target_shards.max(1);
        let mut map = ShardMap::regions_over(bounds);
        while (map.count() as u32) + 3 <= target {
            match map.split_largest_leaf() {
                Some(next) => map = next,
                None => break,
            }
        }
        TickPipeline {
            threads: threads.max(1),
            rebalance: true,
            max_shards: target.saturating_mul(2),
            map,
            pool: PoolHandle::detached(),
        }
    }

    /// Number of spatial shards in the current partition. For adaptive
    /// pipelines this changes as the partition rebalances, and it is what
    /// the compute model reports as the tick's parallel width.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.map.count() as u32
    }

    /// Number of worker threads used to process shards.
    #[must_use]
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Attaches a persistent worker pool: subsequent [`TickPipeline::scope`]
    /// calls dispatch parallel phases onto it instead of opening fresh
    /// thread scopes. The server layer attaches its per-server pool here
    /// right after building the pipeline.
    pub fn attach_pool(&mut self, pool: Arc<TickWorkerPool>) {
        self.pool = PoolHandle::attached(pool);
    }

    /// Detaches the worker pool, reverting every phase to per-phase scoped
    /// threads. A bench/ablation hook: the `worker_pool` bench group uses
    /// it to measure exactly the substrate overhead the pool removes, and
    /// the determinism suite uses it to pin pool-vs-scoped bit-equality.
    pub fn detach_pool(&mut self) {
        self.pool = PoolHandle::detached();
    }

    /// Returns `true` when a persistent worker pool is attached (and would
    /// actually be used — i.e. `threads > 1`).
    #[must_use]
    pub fn has_pool(&self) -> bool {
        self.threads > 1 && self.pool.get().is_some()
    }

    /// The execution scope for this tick's parallel phases: the attached
    /// persistent pool when there is one and `threads > 1`, otherwise the
    /// scoped fallback (which runs inline for `threads <= 1`). Both
    /// variants produce bit-identical results; only wall-clock substrate
    /// cost differs.
    #[must_use]
    pub fn scope(&self) -> PoolScope<'_> {
        match self.pool.get() {
            Some(pool) if self.threads > 1 => pool.scope(),
            _ => PoolScope::scoped(self.threads),
        }
    }

    /// Returns `true` when the sharded tick path should be used at all:
    /// more than one shard, or an adaptive partition that may split later.
    #[must_use]
    pub fn is_sharded(&self) -> bool {
        self.map.count() > 1 || self.rebalance
    }

    /// Returns `true` when the partition rebalances between ticks.
    #[must_use]
    pub fn rebalance_enabled(&self) -> bool {
        self.rebalance
    }

    /// The shard map this pipeline currently partitions the world with.
    #[must_use]
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Replaces the current shard map. A test and ablation hook: it lets a
    /// harness force a specific partition (e.g. to migrate a fused TNT
    /// chunk between shards mid-cascade) without synthesizing load reports.
    pub fn set_map(&mut self, map: ShardMap) {
        self.map = map;
    }

    /// Applies one tick's merged load report: runs one
    /// [`ShardMap::rebalanced`] step and adopts the result. Returns `true`
    /// when the partition changed. A no-op (returning `false`) for
    /// non-rebalancing pipelines.
    pub fn apply_load_report(&mut self, report: &ShardLoadReport) -> bool {
        if !self.rebalance {
            return false;
        }
        match self.map.rebalanced(report, self.max_shards) {
            Some(next) => {
                self.map = next;
                true
            }
            None => false,
        }
    }
}

/// Read access to terrain blocks.
///
/// `&mut self` because the canonical implementation ([`World`]) lazily
/// generates missing chunks on read. Snapshot implementations
/// ([`FrozenWorld`]) simply read unloaded positions as air.
pub trait BlockReader {
    /// Returns the block at `pos`.
    fn block(&mut self, pos: BlockPos) -> Block;

    /// Returns the `y` of the highest non-air block in column `(x, z)` from
    /// a maintained heightmap: `Some(-1)` when the column is known to be all
    /// air, or `None` when the reader has no cheap answer (callers fall back
    /// to a full column scan).
    ///
    /// Implementations must agree with [`BlockReader::block`]: every
    /// position strictly above the returned top reads as air, and the
    /// implementation performs the same chunk generation `block` would for
    /// that column (lazily generating readers generate, frozen readers
    /// don't), so consulting the heightmap instead of scanning is
    /// observationally identical.
    fn column_top(&mut self, _x: i32, _z: i32) -> Option<i32> {
        None
    }
}

/// The world-access surface the terrain-simulation rules are written
/// against: block reads and writes plus delayed-update scheduling.
///
/// Implemented by [`World`] (the legacy serial path) and by the pipeline's
/// per-shard views, so one copy of the rule code serves both paths.
pub trait TerrainView: BlockReader {
    /// Returns the block at `pos` without generating missing chunks.
    fn block_if_loaded(&self, pos: BlockPos) -> Block;

    /// Sets the block at `pos`, recording the change and enqueueing
    /// neighbour updates. Returns the previous block.
    fn set_block(&mut self, pos: BlockPos, block: Block) -> Block;

    /// Schedules a block update for `pos` to run `delay_ticks` from now.
    fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64);

    /// The current game tick number.
    fn current_tick(&self) -> u64;
}

impl BlockReader for World {
    fn block(&mut self, pos: BlockPos) -> Block {
        World::block(self, pos)
    }

    fn column_top(&mut self, x: i32, z: i32) -> Option<i32> {
        World::column_top(self, x, z)
    }
}

impl TerrainView for World {
    fn block_if_loaded(&self, pos: BlockPos) -> Block {
        World::block_if_loaded(self, pos)
    }

    fn set_block(&mut self, pos: BlockPos, block: Block) -> Block {
        World::set_block(self, pos, block)
    }

    fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64) {
        World::schedule_tick(self, pos, delay_ticks);
    }

    fn current_tick(&self) -> u64 {
        World::current_tick(self)
    }
}

/// A read-only snapshot view of a world.
///
/// Unloaded positions read as air instead of being generated, so a frozen
/// view can be shared (`Copy`) across worker threads during read-only
/// pipeline phases (entity physics, lighting).
#[derive(Debug, Clone, Copy)]
pub struct FrozenWorld<'a>(pub &'a World);

impl BlockReader for FrozenWorld<'_> {
    fn block(&mut self, pos: BlockPos) -> Block {
        self.0.block_if_loaded(pos)
    }

    fn column_top(&mut self, x: i32, z: i32) -> Option<i32> {
        // Unloaded chunks read as air, so a missing chunk is an all-air
        // column — exactly what `Some(-1)` means.
        let probe = BlockPos::new(x, 0, z);
        let (lx, _, lz) = probe.local();
        Some(
            self.0
                .chunk_if_loaded(probe.chunk())
                .and_then(|c| c.height_at(lx, lz))
                .unwrap_or(-1),
        )
    }
}

/// A read-only view over an owned [`WorldSnapshot`], the persistent-pool
/// counterpart of [`FrozenWorld`].
///
/// Pool workers cannot borrow the world itself, so the frozen phases
/// (relighting, the per-entity phase) move the world's chunks into a
/// [`WorldSnapshot`] inside the shared phase context and read them through
/// this adapter; semantics are identical to [`FrozenWorld`] — unloaded
/// positions are air, nothing is generated.
#[derive(Debug, Clone, Copy)]
pub struct FrozenChunks<'a>(pub &'a WorldSnapshot);

impl BlockReader for FrozenChunks<'_> {
    fn block(&mut self, pos: BlockPos) -> Block {
        self.0.block_if_loaded(pos)
    }

    fn column_top(&mut self, x: i32, z: i32) -> Option<i32> {
        let probe = BlockPos::new(x, 0, z);
        let (lx, _, lz) = probe.local();
        Some(
            self.0
                .chunk_if_loaded(probe.chunk())
                .and_then(|c| c.height_at(lx, lz))
                .unwrap_or(-1),
        )
    }
}

/// A mutable view over exactly one shard's chunks, used by shard workers
/// during the parallel phase of the sharded terrain tick.
///
/// The view owns the shard's [`ShardStore`] for the duration of the phase
/// and buffers every side effect that crosses the shard boundary or must be
/// ordered globally — block changes, outbound neighbour updates, scheduled
/// ticks — for the serial merge phase to apply in canonical shard order.
/// Reads and writes outside the shard are a modeling-invariant violation
/// (interior classification guarantees rules never reach that far) and
/// panic loudly rather than silently corrupting determinism.
pub struct ShardWorld<'a> {
    shard: usize,
    map: &'a ShardMap,
    store: ShardStore,
    generator: &'a dyn ChunkGenerator,
    tick: u64,
    /// When set, even in-shard interior neighbour pushes are buffered into
    /// `outbound` instead of the local queue — used by the random-tick
    /// phase, whose cascades must carry over to the *next* tick exactly
    /// like the serial path's.
    defer_local_pushes: bool,
    /// Chunks lazily generated by this view during the phase.
    pub chunks_generated: u32,
    /// Block changes recorded by this view, in application order.
    pub changes: Vec<BlockChange>,
    /// Neighbour updates that left the shard interior (or all updates, when
    /// `defer_local_pushes` is set), in emission order.
    pub outbound: Vec<BlockPos>,
    /// Scheduled ticks requested by rules, as (position, absolute due tick).
    pub scheduled: Vec<(BlockPos, u64)>,
    queue: VecDeque<BlockUpdate>,
    queued: HashSet<BlockPos>,
}

impl<'a> ShardWorld<'a> {
    /// Creates a view over `store` for `shard`, at game tick `tick`.
    #[must_use]
    pub fn new(
        shard: usize,
        map: &'a ShardMap,
        store: ShardStore,
        generator: &'a dyn ChunkGenerator,
        tick: u64,
        defer_local_pushes: bool,
    ) -> Self {
        ShardWorld {
            shard,
            map,
            store,
            generator,
            tick,
            defer_local_pushes,
            chunks_generated: 0,
            changes: Vec::new(),
            outbound: Vec::new(),
            scheduled: Vec::new(),
            queue: VecDeque::new(),
            queued: HashSet::new(),
        }
    }

    /// The shard this view owns.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Seeds the local work queue with an update routed to this shard
    /// (coalescing duplicates, like the global update queue does).
    pub fn push_local(&mut self, update: BlockUpdate) {
        if self.queued.insert(update.pos) {
            self.queue.push_back(update);
        }
    }

    /// Pops the next local update, if any.
    pub fn pop_local(&mut self) -> Option<BlockUpdate> {
        let update = self.queue.pop_front()?;
        self.queued.remove(&update.pos);
        Some(update)
    }

    /// Drains whatever is left in the local queue (budget exhaustion).
    pub fn drain_local(&mut self) -> Vec<BlockUpdate> {
        self.queued.clear();
        self.queue.drain(..).collect()
    }

    /// Consumes the view and returns the shard store.
    #[must_use]
    pub fn into_store(self) -> ShardStore {
        self.store
    }

    fn route_push(&mut self, pos: BlockPos) {
        if !self.defer_local_pushes && self.map.interior_shard(pos.chunk()) == Some(self.shard) {
            self.push_local(BlockUpdate::neighbor(pos));
        } else {
            self.outbound.push(pos);
        }
    }

    fn owned_chunk_mut(&mut self, chunk_pos: ChunkPos) -> &mut crate::chunk::Chunk {
        assert_eq!(
            self.map.shard_of_chunk(chunk_pos),
            self.shard,
            "shard {} touched foreign chunk {chunk_pos} — interior classification is broken",
            self.shard
        );
        if !self.store.contains(chunk_pos) {
            self.store.insert(self.generator.generate(chunk_pos));
            self.chunks_generated += 1;
        }
        self.store.get_mut(chunk_pos).expect("chunk just ensured")
    }
}

impl BlockReader for ShardWorld<'_> {
    fn block(&mut self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        self.owned_chunk_mut(pos.chunk()).block(lx, y, lz)
    }

    fn column_top(&mut self, x: i32, z: i32) -> Option<i32> {
        let probe = BlockPos::new(x, 0, z);
        let chunk_pos = probe.chunk();
        // Only in-shard columns have a cheap answer; a foreign-column scan
        // would panic in `block` exactly as it did before this fast path.
        if self.map.shard_of_chunk(chunk_pos) != self.shard {
            return None;
        }
        let (lx, _, lz) = probe.local();
        Some(
            self.owned_chunk_mut(chunk_pos)
                .height_at(lx, lz)
                .unwrap_or(-1),
        )
    }
}

impl TerrainView for ShardWorld<'_> {
    fn block_if_loaded(&self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        self.store
            .get(pos.chunk())
            .map_or(Block::AIR, |c| c.block(lx, y, lz))
    }

    fn set_block(&mut self, pos: BlockPos, block: Block) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        let old = self
            .owned_chunk_mut(pos.chunk())
            .set_block(lx, y, lz, block);
        if old != block {
            self.changes.push(BlockChange {
                pos,
                old,
                new: block,
            });
            for n in pos.neighbors() {
                self.route_push(n);
            }
            self.route_push(pos);
        }
        old
    }

    fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64) {
        self.scheduled.push((pos, self.tick + delay_ticks.max(1)));
    }

    fn current_tick(&self) -> u64 {
        self.tick
    }
}

/// Runs independent tasks on freshly spawned scoped worker threads and
/// returns them in input order.
///
/// This is the *scoped fallback* behind [`PoolScope`]: it spawns and joins
/// `min(threads, tasks)` OS threads per call, which the persistent
/// [`TickWorkerPool`] exists to avoid on the per-tick hot path. Tasks are claimed from a shared queue, so placement
/// is load-balanced, but because each task is self-contained and results
/// are re-ordered by index, the output is identical for every `threads`
/// value — including 1, which runs everything inline on the calling
/// thread.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn run_tasks<T, F>(mut tasks: Vec<T>, threads: u32, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = (threads as usize).min(tasks.len());
    if workers <= 1 {
        for (index, task) in tasks.iter_mut().enumerate() {
            f(index, task);
        }
        return tasks;
    }

    type TaskResult<T> = (usize, Result<T, String>);
    let total = tasks.len();
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<TaskResult<T>>();
    // Every job is enqueued before the first worker starts, so an Empty
    // try_recv unambiguously means the queue is drained.
    for job in tasks.drain(..).enumerate() {
        let _ = job_tx.send(job);
    }
    drop(job_tx);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((index, mut task)) = job_rx.try_recv() {
                    // A panicking task must still produce a result message,
                    // otherwise the collector below would wait forever.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        f(index, &mut task);
                        task
                    }))
                    .map_err(crate::pool::panic_message);
                    let _ = result_tx.send((index, outcome));
                }
            });
        }
        drop(result_tx);

        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(total, || None);
        let mut first_panic: Option<String> = None;
        for _ in 0..total {
            let (index, outcome) = result_rx.recv().expect("worker sends one result per task");
            match outcome {
                Ok(task) => slots[index] = Some(task),
                Err(message) => {
                    if first_panic.is_none() {
                        first_panic = Some(message);
                    }
                }
            }
        }
        if let Some(message) = first_panic {
            panic!("shard worker panicked: {message}");
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task completed"))
            .collect()
    })
    .expect("scoped worker pool")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_chunk_is_stripe_round_robin() {
        let map = ShardMap::new(4);
        // Chunks 0..4 share stripe 0, 4..8 stripe 1, etc.
        assert_eq!(map.shard_of_chunk(ChunkPos::new(0, 0)), 0);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(3, 7)), 0);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(4, -2)), 1);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(8, 0)), 2);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(12, 0)), 3);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(16, 0)), 0);
        // Negative coordinates wrap without bias.
        assert_eq!(map.shard_of_chunk(ChunkPos::new(-1, 0)), 3);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(-4, 0)), 3);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(-5, 0)), 2);
    }

    #[test]
    fn single_shard_owns_everything_and_is_always_interior() {
        let map = ShardMap::new(1);
        for x in -40..40 {
            let chunk = ChunkPos::new(x, x / 3);
            assert_eq!(map.shard_of_chunk(chunk), 0);
            assert_eq!(map.interior_shard(chunk), Some(0));
        }
    }

    #[test]
    fn stripe_edges_are_boundary_chunks() {
        let map = ShardMap::new(2);
        // x = 0 has a left neighbour in the previous stripe.
        assert_eq!(map.interior_shard(ChunkPos::new(0, 0)), None);
        assert_eq!(map.interior_shard(ChunkPos::new(3, 0)), None);
        // The inner two columns of each stripe are interior.
        assert_eq!(map.interior_shard(ChunkPos::new(1, 0)), Some(0));
        assert_eq!(map.interior_shard(ChunkPos::new(2, 5)), Some(0));
        assert_eq!(map.interior_shard(ChunkPos::new(5, -9)), Some(1));
    }

    #[test]
    fn block_and_chunk_mapping_agree() {
        let map = ShardMap::new(3);
        for &(x, z) in &[(0, 0), (63, 10), (-17, 5), (128, -4)] {
            let pos = BlockPos::new(x, 64, z);
            assert_eq!(map.shard_of_block(pos), map.shard_of_chunk(pos.chunk()));
        }
    }

    #[test]
    fn pipeline_clamps_degenerate_values() {
        let p = TickPipeline::new(0, 0);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.threads(), 1);
        assert!(!p.is_sharded());
        assert!(TickPipeline::new(4, 2).is_sharded());
        assert_eq!(TickPipeline::default(), TickPipeline::serial());
    }

    fn region_map(bounds_min: (i32, i32), bounds_max: (i32, i32)) -> ShardMap {
        ShardMap::regions_over(Some((
            ChunkPos::new(bounds_min.0, bounds_min.1),
            ChunkPos::new(bounds_max.0, bounds_max.1),
        )))
    }

    #[test]
    fn region_root_covers_the_bounds_with_one_leaf() {
        let map = region_map((-4, -4), (4, 4));
        assert!(map.is_adaptive());
        assert_eq!(map.count(), 1);
        let rects = map.region_rects();
        assert_eq!(rects.len(), 1);
        let (x0, z0, size) = rects[0];
        assert_eq!((x0, z0), (-4, -4));
        assert!(size >= 9 && (size as u32).is_power_of_two());
        // Every chunk — inside or outside the root — maps to the one shard.
        for &(x, z) in &[(0, 0), (-4, 4), (1_000, -1_000)] {
            assert_eq!(map.shard_of_chunk(ChunkPos::new(x, z)), 0);
            assert_eq!(map.interior_shard(ChunkPos::new(x, z)), Some(0));
        }
    }

    #[test]
    fn split_partitions_the_root_into_quadrants() {
        let map = region_map((-8, -8), (7, 7));
        let report = ShardLoadReport::new(vec![100]);
        let split = map.rebalanced(&report, 8).expect("one hot leaf must split");
        assert_eq!(split.count(), 4);
        // Quadrant membership in canonical (NW, NE, SW, SE) order.
        assert_eq!(split.shard_of_chunk(ChunkPos::new(-8, -8)), 0);
        assert_eq!(split.shard_of_chunk(ChunkPos::new(0, -8)), 1);
        assert_eq!(split.shard_of_chunk(ChunkPos::new(-8, 0)), 2);
        assert_eq!(split.shard_of_chunk(ChunkPos::new(0, 0)), 3);
        // Chunks outside the root clamp onto the edge shards.
        assert_eq!(split.shard_of_chunk(ChunkPos::new(-100, -100)), 0);
        assert_eq!(split.shard_of_chunk(ChunkPos::new(100, 100)), 3);
        // The quadrant seam is boundary, quadrant cores are interior.
        assert_eq!(split.interior_shard(ChunkPos::new(0, 0)), None);
        assert_eq!(split.interior_shard(ChunkPos::new(-1, -1)), None);
        assert_eq!(split.interior_shard(ChunkPos::new(-5, -5)), Some(0));
        assert_eq!(split.interior_shard(ChunkPos::new(4, 4)), Some(3));
    }

    #[test]
    fn rebalancing_is_a_pure_function_of_the_report() {
        let mut map = region_map((-8, -8), (7, 7));
        // Evolve through a few steps; at every step the same (map, report)
        // pair must produce the same partition again.
        let reports = [
            vec![10_000u64],
            vec![9_000, 100, 100, 100],
            vec![8_000, 200, 200, 200, 100, 100, 100],
        ];
        for loads in reports {
            let report = ShardLoadReport::new(loads);
            let a = map.rebalanced(&report, 16);
            let b = map.rebalanced(&report, 16);
            assert_eq!(a, b, "rebalancing must be deterministic");
            if let Some(next) = a {
                map = next;
            }
        }
        assert!(map.count() > 4, "hot shard 0 should keep splitting");
    }

    #[test]
    fn split_respects_the_minimum_region_size_and_shard_cap() {
        // Root of 8 chunks: one split produces minimum-size leaves that can
        // never split again.
        let map = region_map((0, 0), (7, 7));
        let split = map
            .rebalanced(&ShardLoadReport::new(vec![100]), 8)
            .expect("root splits");
        assert_eq!(split.count(), 4);
        assert!(split
            .region_rects()
            .iter()
            .all(|r| r.2 == MIN_REGION_CHUNKS));
        let again = split.rebalanced(&ShardLoadReport::new(vec![100, 0, 0, 0]), 8);
        assert_eq!(again, None, "minimum-size leaves must not split");
        // Cap: a map already at the shard budget cannot split either.
        let capped = split.rebalanced(&ShardLoadReport::new(vec![100, 0, 0, 0]), 4);
        assert_eq!(capped, None);
    }

    #[test]
    fn cold_quads_merge_back_and_hysteresis_prevents_oscillation() {
        let map = region_map((-16, -16), (15, 15));
        let split = map
            .rebalanced(&ShardLoadReport::new(vec![100]), 8)
            .expect("root splits");
        assert_eq!(split.count(), 4);
        // Balanced load: inside the dead band, nothing happens.
        let balanced = ShardLoadReport::new(vec![25, 25, 25, 25]);
        assert_eq!(split.rebalanced(&balanced, 8), None);
        // A quad well below half the mean merges… except the only quad here
        // is the whole root, whose load IS the total; craft a deeper tree.
        let deeper = split
            .rebalanced(&ShardLoadReport::new(vec![1_000, 10, 10, 10]), 16)
            .expect("hot quadrant splits");
        assert_eq!(deeper.count(), 7);
        // Now the sub-quad (leaves 0..4) has gone cold while the remaining
        // quadrants are hot; with the shard cap blocking further splits the
        // cold quad merges back into one leaf.
        let merged = deeper
            .rebalanced(&ShardLoadReport::new(vec![1, 1, 1, 1, 500, 500, 500]), 8)
            .expect("cold quad merges");
        assert_eq!(merged.count(), 4);
        // And the merged partition equals the original 4-leaf split.
        assert_eq!(merged, split);
    }

    #[test]
    fn stripe_maps_never_rebalance() {
        let map = ShardMap::stripes(4);
        assert!(!map.is_adaptive());
        assert_eq!(
            map.rebalanced(&ShardLoadReport::new(vec![100, 0, 0, 0]), 16),
            None
        );
        assert!(map.region_rects().is_empty());
    }

    #[test]
    fn stale_or_empty_reports_leave_the_partition_alone() {
        let map = region_map((-8, -8), (7, 7));
        assert_eq!(map.rebalanced(&ShardLoadReport::new(vec![]), 8), None);
        assert_eq!(map.rebalanced(&ShardLoadReport::new(vec![0]), 8), None);
        assert_eq!(
            map.rebalanced(&ShardLoadReport::new(vec![5, 5]), 8),
            None,
            "a report sized for a different partition is stale"
        );
    }

    #[test]
    fn load_report_folds_stage_counters_with_model_weights() {
        let report = ShardLoadReport::from_stage_work(&[10, 0, 2], &[1, 3, 0]);
        assert_eq!(
            report.loads(),
            &[
                10 * TERRAIN_LOAD_WEIGHT + ENTITY_LOAD_WEIGHT,
                3 * ENTITY_LOAD_WEIGHT,
                2 * TERRAIN_LOAD_WEIGHT
            ]
        );
        assert_eq!(report.total(), report.loads().iter().sum::<u64>());
        assert_eq!(report.max(), 3 * ENTITY_LOAD_WEIGHT);
    }

    #[test]
    fn adaptive_pipeline_pre_splits_toward_the_target() {
        let bounds = Some((ChunkPos::new(-16, -16), ChunkPos::new(15, 15)));
        let p = TickPipeline::adaptive(bounds, 8, 2);
        assert!(p.is_sharded());
        assert!(p.rebalance_enabled());
        assert_eq!(p.shards(), 7, "1 -> 4 -> 7 leaves, then 7 + 3 > 8");
        assert!(p.shard_map().is_adaptive());
        // A target of 1 is degenerate: the 2×target cap leaves no headroom
        // for a split (which adds 3 leaves), so the partition is frozen at
        // one region — serial-equivalent, though still on the sharded path.
        let mut single = TickPipeline::adaptive(None, 1, 1);
        assert_eq!(single.shards(), 1);
        assert!(single.is_sharded());
        assert!(!single.apply_load_report(&ShardLoadReport::new(vec![1_000_000])));
        assert_eq!(single.shards(), 1, "degenerate target never splits");
        // Static pipelines ignore load reports entirely.
        let mut static_p = TickPipeline::new(4, 2);
        assert!(!static_p.apply_load_report(&ShardLoadReport::new(vec![100, 0, 0, 0])));
        assert_eq!(static_p.shards(), 4);
    }

    #[test]
    fn every_chunk_maps_to_exactly_one_valid_shard_after_any_sequence() {
        let mut pipeline =
            TickPipeline::adaptive(Some((ChunkPos::new(-16, -16), ChunkPos::new(15, 15))), 8, 1);
        let mut rng: u64 = 0x5EED;
        for _ in 0..40 {
            let count = pipeline.shards() as usize;
            let loads: Vec<u64> = (0..count)
                .map(|_| {
                    rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    rng >> 40
                })
                .collect();
            pipeline.apply_load_report(&ShardLoadReport::new(loads));
            let map = pipeline.shard_map();
            for x in -20..20 {
                for z in -20..20 {
                    let shard = map.shard_of_chunk(ChunkPos::new(x, z));
                    assert!(shard < map.count());
                }
            }
            // Leaf rects tile the root exactly once.
            let rects = map.region_rects();
            let area: i64 = rects.iter().map(|r| i64::from(r.2) * i64::from(r.2)).sum();
            assert_eq!(area, 32 * 32, "leaves must tile the root");
        }
    }

    #[test]
    fn run_tasks_is_thread_count_invariant() {
        let work = |_, task: &mut u64| {
            // Uneven per-task cost so scheduling actually varies.
            let mut acc = *task;
            for i in 0..(*task % 7) * 1_000 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            *task = acc;
        };
        let input: Vec<u64> = (0..37).collect();
        let serial = run_tasks(input.clone(), 1, work);
        for threads in [2, 4, 8] {
            assert_eq!(run_tasks(input.clone(), threads, work), serial);
        }
    }

    #[test]
    fn run_tasks_handles_empty_and_single_inputs() {
        let bump = |_, t: &mut i32| *t += 1;
        assert!(run_tasks(Vec::<i32>::new(), 4, bump).is_empty());
        assert_eq!(run_tasks(vec![41], 4, bump), vec![42]);
    }

    #[test]
    #[should_panic(expected = "shard worker panicked")]
    fn run_tasks_propagates_worker_panics() {
        let _ = run_tasks(vec![0u32, 1, 2, 3], 2, |_, t| {
            assert!(*t != 2, "boom");
        });
    }
}
