//! Spatial chunk sharding: the partitioning layer of the sharded tick
//! pipeline.
//!
//! Folia-style MLG servers split the loaded world into independently ticked
//! regions. This module provides the deterministic partitioning primitives
//! the rest of the workspace builds on:
//!
//! * [`ShardMap`] — a pure function from chunk coordinates to shard index.
//!   Chunks are grouped into contiguous stripes of
//!   [`SHARD_STRIPE_CHUNKS`] columns along the x axis, and stripes are
//!   assigned to shards round-robin. A position is *interior* to its shard
//!   when every chunk in its 3×3 chunk neighbourhood maps to the same
//!   shard: every terrain rule in this crate reads and writes within 8
//!   blocks of the update position it is dispatched for (cascades travel
//!   through queued updates, not in-dispatch traversal), so interior
//!   updates can be processed by concurrent shard workers without ever
//!   touching another shard's chunks. Boundary updates are escalated to a
//!   serial merge phase.
//! * [`TickPipeline`] — the (shard count, worker thread count) execution
//!   configuration of one server. Shard count is part of the *simulated
//!   architecture* (it changes scheduling and therefore the modeled
//!   execution, like Folia's region count does); thread count is pure
//!   execution infrastructure and never changes results: the sharded tick
//!   is bit-identical at any thread count by construction.
//! * [`BlockReader`] / [`TerrainView`] — the world-access traits the
//!   simulation rules are generic over, so the same rule code runs against
//!   the full [`World`], a read-only [`FrozenWorld`] snapshot, or a
//!   mutable single-shard view during the parallel phase.
//! * [`run_tasks`] — the scoped worker pool (crossbeam scoped threads +
//!   channels) that fans independent shard tasks out and collects them
//!   back in deterministic shard order. Each call opens a fresh scope —
//!   workers live for one pipeline phase, not across ticks — trading a
//!   few spawn/join microseconds per phase for borrow-friendly access to
//!   per-tick state (a persistent pool could not borrow the tick's
//!   world).

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::chunk::WORLD_HEIGHT;
use crate::generation::ChunkGenerator;
use crate::pos::{BlockPos, ChunkPos};
use crate::update::BlockUpdate;
use crate::world::{BlockChange, ShardStore, World};

/// Width of one shard stripe, in chunks, along the x axis.
///
/// Wider stripes mean a larger interior fraction (more parallel work) but
/// fewer distinct stripes to spread across shards; 4 chunks (64 blocks)
/// keeps both reasonable for the workload worlds of the paper.
pub const SHARD_STRIPE_CHUNKS: i32 = 4;

/// Deterministic assignment of chunks to spatial shards.
///
/// The mapping is a pure function of the chunk coordinates and the shard
/// count — independent of load order, thread count and execution history —
/// which is the foundation of the pipeline's bit-identical parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    count: u32,
}

impl ShardMap {
    /// Creates a map over `count` shards (clamped to at least 1).
    #[must_use]
    pub fn new(count: u32) -> Self {
        ShardMap {
            count: count.max(1),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The shard owning the given chunk.
    #[must_use]
    pub fn shard_of_chunk(&self, chunk: ChunkPos) -> usize {
        chunk
            .x
            .div_euclid(SHARD_STRIPE_CHUNKS)
            .rem_euclid(self.count as i32) as usize
    }

    /// The shard owning the chunk containing the given block.
    #[must_use]
    pub fn shard_of_block(&self, pos: BlockPos) -> usize {
        self.shard_of_chunk(pos.chunk())
    }

    /// Returns `Some(shard)` when `chunk` *and its full 3×3 chunk
    /// neighbourhood* belong to the same shard — the condition under which
    /// a terrain rule dispatched inside `chunk` is guaranteed never to read
    /// or write another shard's chunks (rule footprints are bounded by 8
    /// blocks; see the module docs). Returns `None` for boundary chunks,
    /// whose updates must be processed in the serial merge phase.
    #[must_use]
    pub fn interior_shard(&self, chunk: ChunkPos) -> Option<usize> {
        let owner = self.shard_of_chunk(chunk);
        for dx in -1..=1 {
            for dz in -1..=1 {
                if self.shard_of_chunk(ChunkPos::new(chunk.x + dx, chunk.z + dz)) != owner {
                    return None;
                }
            }
        }
        Some(owner)
    }

    /// [`ShardMap::interior_shard`] for the chunk containing a block.
    #[must_use]
    pub fn interior_shard_of_block(&self, pos: BlockPos) -> Option<usize> {
        self.interior_shard(pos.chunk())
    }
}

/// Execution configuration of the sharded tick pipeline: how many spatial
/// shards the world is partitioned into and how many worker threads fan the
/// per-shard work out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickPipeline {
    shards: u32,
    threads: u32,
}

impl Default for TickPipeline {
    fn default() -> Self {
        TickPipeline::serial()
    }
}

impl TickPipeline {
    /// Creates a pipeline configuration (both values clamped to at least 1).
    #[must_use]
    pub fn new(shards: u32, threads: u32) -> Self {
        TickPipeline {
            shards: shards.max(1),
            threads: threads.max(1),
        }
    }

    /// The classic single-shard, single-thread game loop.
    #[must_use]
    pub fn serial() -> Self {
        TickPipeline {
            shards: 1,
            threads: 1,
        }
    }

    /// Number of spatial shards.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of worker threads used to process shards.
    #[must_use]
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Returns `true` when the sharded tick path should be used at all
    /// (more than one shard).
    #[must_use]
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// The shard map this pipeline partitions the world with.
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.shards)
    }
}

/// Read access to terrain blocks.
///
/// `&mut self` because the canonical implementation ([`World`]) lazily
/// generates missing chunks on read. Snapshot implementations
/// ([`FrozenWorld`]) simply read unloaded positions as air.
pub trait BlockReader {
    /// Returns the block at `pos`.
    fn block(&mut self, pos: BlockPos) -> Block;
}

/// The world-access surface the terrain-simulation rules are written
/// against: block reads and writes plus delayed-update scheduling.
///
/// Implemented by [`World`] (the legacy serial path) and by the pipeline's
/// per-shard views, so one copy of the rule code serves both paths.
pub trait TerrainView: BlockReader {
    /// Returns the block at `pos` without generating missing chunks.
    fn block_if_loaded(&self, pos: BlockPos) -> Block;

    /// Sets the block at `pos`, recording the change and enqueueing
    /// neighbour updates. Returns the previous block.
    fn set_block(&mut self, pos: BlockPos, block: Block) -> Block;

    /// Schedules a block update for `pos` to run `delay_ticks` from now.
    fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64);

    /// The current game tick number.
    fn current_tick(&self) -> u64;
}

impl BlockReader for World {
    fn block(&mut self, pos: BlockPos) -> Block {
        World::block(self, pos)
    }
}

impl TerrainView for World {
    fn block_if_loaded(&self, pos: BlockPos) -> Block {
        World::block_if_loaded(self, pos)
    }

    fn set_block(&mut self, pos: BlockPos, block: Block) -> Block {
        World::set_block(self, pos, block)
    }

    fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64) {
        World::schedule_tick(self, pos, delay_ticks);
    }

    fn current_tick(&self) -> u64 {
        World::current_tick(self)
    }
}

/// A read-only snapshot view of a world.
///
/// Unloaded positions read as air instead of being generated, so a frozen
/// view can be shared (`Copy`) across worker threads during read-only
/// pipeline phases (entity physics, lighting).
#[derive(Debug, Clone, Copy)]
pub struct FrozenWorld<'a>(pub &'a World);

impl BlockReader for FrozenWorld<'_> {
    fn block(&mut self, pos: BlockPos) -> Block {
        self.0.block_if_loaded(pos)
    }
}

/// A mutable view over exactly one shard's chunks, used by shard workers
/// during the parallel phase of the sharded terrain tick.
///
/// The view owns the shard's [`ShardStore`] for the duration of the phase
/// and buffers every side effect that crosses the shard boundary or must be
/// ordered globally — block changes, outbound neighbour updates, scheduled
/// ticks — for the serial merge phase to apply in canonical shard order.
/// Reads and writes outside the shard are a modeling-invariant violation
/// (interior classification guarantees rules never reach that far) and
/// panic loudly rather than silently corrupting determinism.
pub struct ShardWorld<'a> {
    shard: usize,
    map: &'a ShardMap,
    store: ShardStore,
    generator: &'a dyn ChunkGenerator,
    tick: u64,
    /// When set, even in-shard interior neighbour pushes are buffered into
    /// `outbound` instead of the local queue — used by the random-tick
    /// phase, whose cascades must carry over to the *next* tick exactly
    /// like the serial path's.
    defer_local_pushes: bool,
    /// Chunks lazily generated by this view during the phase.
    pub chunks_generated: u32,
    /// Block changes recorded by this view, in application order.
    pub changes: Vec<BlockChange>,
    /// Neighbour updates that left the shard interior (or all updates, when
    /// `defer_local_pushes` is set), in emission order.
    pub outbound: Vec<BlockPos>,
    /// Scheduled ticks requested by rules, as (position, absolute due tick).
    pub scheduled: Vec<(BlockPos, u64)>,
    queue: VecDeque<BlockUpdate>,
    queued: HashSet<BlockPos>,
}

impl<'a> ShardWorld<'a> {
    /// Creates a view over `store` for `shard`, at game tick `tick`.
    #[must_use]
    pub fn new(
        shard: usize,
        map: &'a ShardMap,
        store: ShardStore,
        generator: &'a dyn ChunkGenerator,
        tick: u64,
        defer_local_pushes: bool,
    ) -> Self {
        ShardWorld {
            shard,
            map,
            store,
            generator,
            tick,
            defer_local_pushes,
            chunks_generated: 0,
            changes: Vec::new(),
            outbound: Vec::new(),
            scheduled: Vec::new(),
            queue: VecDeque::new(),
            queued: HashSet::new(),
        }
    }

    /// The shard this view owns.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Seeds the local work queue with an update routed to this shard
    /// (coalescing duplicates, like the global update queue does).
    pub fn push_local(&mut self, update: BlockUpdate) {
        if self.queued.insert(update.pos) {
            self.queue.push_back(update);
        }
    }

    /// Pops the next local update, if any.
    pub fn pop_local(&mut self) -> Option<BlockUpdate> {
        let update = self.queue.pop_front()?;
        self.queued.remove(&update.pos);
        Some(update)
    }

    /// Drains whatever is left in the local queue (budget exhaustion).
    pub fn drain_local(&mut self) -> Vec<BlockUpdate> {
        self.queued.clear();
        self.queue.drain(..).collect()
    }

    /// Consumes the view and returns the shard store.
    #[must_use]
    pub fn into_store(self) -> ShardStore {
        self.store
    }

    fn route_push(&mut self, pos: BlockPos) {
        if !self.defer_local_pushes && self.map.interior_shard(pos.chunk()) == Some(self.shard) {
            self.push_local(BlockUpdate::neighbor(pos));
        } else {
            self.outbound.push(pos);
        }
    }

    fn owned_chunk_mut(&mut self, chunk_pos: ChunkPos) -> &mut crate::chunk::Chunk {
        assert_eq!(
            self.map.shard_of_chunk(chunk_pos),
            self.shard,
            "shard {} touched foreign chunk {chunk_pos} — interior classification is broken",
            self.shard
        );
        if !self.store.contains(chunk_pos) {
            self.store.insert(self.generator.generate(chunk_pos));
            self.chunks_generated += 1;
        }
        self.store.get_mut(chunk_pos).expect("chunk just ensured")
    }
}

impl BlockReader for ShardWorld<'_> {
    fn block(&mut self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        self.owned_chunk_mut(pos.chunk()).block(lx, y, lz)
    }
}

impl TerrainView for ShardWorld<'_> {
    fn block_if_loaded(&self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        self.store
            .get(pos.chunk())
            .map_or(Block::AIR, |c| c.block(lx, y, lz))
    }

    fn set_block(&mut self, pos: BlockPos, block: Block) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        let old = self
            .owned_chunk_mut(pos.chunk())
            .set_block(lx, y, lz, block);
        if old != block {
            self.changes.push(BlockChange {
                pos,
                old,
                new: block,
            });
            for n in pos.neighbors() {
                self.route_push(n);
            }
            self.route_push(pos);
        }
        old
    }

    fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64) {
        self.scheduled.push((pos, self.tick + delay_ticks.max(1)));
    }

    fn current_tick(&self) -> u64 {
        self.tick
    }
}

/// Runs independent tasks on a pool of scoped worker threads and returns
/// them in input order.
///
/// Tasks are claimed from a shared queue, so placement is load-balanced,
/// but because each task is self-contained and results are re-ordered by
/// index, the output is identical for every `threads` value — including 1,
/// which runs everything inline on the calling thread.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn run_tasks<T, F>(mut tasks: Vec<T>, threads: u32, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = (threads as usize).min(tasks.len());
    if workers <= 1 {
        for (index, task) in tasks.iter_mut().enumerate() {
            f(index, task);
        }
        return tasks;
    }

    type TaskResult<T> = (usize, Result<T, String>);
    let total = tasks.len();
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<TaskResult<T>>();
    // Every job is enqueued before the first worker starts, so an Empty
    // try_recv unambiguously means the queue is drained.
    for job in tasks.drain(..).enumerate() {
        let _ = job_tx.send(job);
    }
    drop(job_tx);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((index, mut task)) = job_rx.try_recv() {
                    // A panicking task must still produce a result message,
                    // otherwise the collector below would wait forever.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        f(index, &mut task);
                        task
                    }))
                    .map_err(|payload| {
                        payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into())
                    });
                    let _ = result_tx.send((index, outcome));
                }
            });
        }
        drop(result_tx);

        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(total, || None);
        let mut first_panic: Option<String> = None;
        for _ in 0..total {
            let (index, outcome) = result_rx.recv().expect("worker sends one result per task");
            match outcome {
                Ok(task) => slots[index] = Some(task),
                Err(message) => {
                    if first_panic.is_none() {
                        first_panic = Some(message);
                    }
                }
            }
        }
        if let Some(message) = first_panic {
            panic!("shard worker panicked: {message}");
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task completed"))
            .collect()
    })
    .expect("scoped worker pool")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_chunk_is_stripe_round_robin() {
        let map = ShardMap::new(4);
        // Chunks 0..4 share stripe 0, 4..8 stripe 1, etc.
        assert_eq!(map.shard_of_chunk(ChunkPos::new(0, 0)), 0);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(3, 7)), 0);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(4, -2)), 1);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(8, 0)), 2);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(12, 0)), 3);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(16, 0)), 0);
        // Negative coordinates wrap without bias.
        assert_eq!(map.shard_of_chunk(ChunkPos::new(-1, 0)), 3);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(-4, 0)), 3);
        assert_eq!(map.shard_of_chunk(ChunkPos::new(-5, 0)), 2);
    }

    #[test]
    fn single_shard_owns_everything_and_is_always_interior() {
        let map = ShardMap::new(1);
        for x in -40..40 {
            let chunk = ChunkPos::new(x, x / 3);
            assert_eq!(map.shard_of_chunk(chunk), 0);
            assert_eq!(map.interior_shard(chunk), Some(0));
        }
    }

    #[test]
    fn stripe_edges_are_boundary_chunks() {
        let map = ShardMap::new(2);
        // x = 0 has a left neighbour in the previous stripe.
        assert_eq!(map.interior_shard(ChunkPos::new(0, 0)), None);
        assert_eq!(map.interior_shard(ChunkPos::new(3, 0)), None);
        // The inner two columns of each stripe are interior.
        assert_eq!(map.interior_shard(ChunkPos::new(1, 0)), Some(0));
        assert_eq!(map.interior_shard(ChunkPos::new(2, 5)), Some(0));
        assert_eq!(map.interior_shard(ChunkPos::new(5, -9)), Some(1));
    }

    #[test]
    fn block_and_chunk_mapping_agree() {
        let map = ShardMap::new(3);
        for &(x, z) in &[(0, 0), (63, 10), (-17, 5), (128, -4)] {
            let pos = BlockPos::new(x, 64, z);
            assert_eq!(map.shard_of_block(pos), map.shard_of_chunk(pos.chunk()));
        }
    }

    #[test]
    fn pipeline_clamps_degenerate_values() {
        let p = TickPipeline::new(0, 0);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.threads(), 1);
        assert!(!p.is_sharded());
        assert!(TickPipeline::new(4, 2).is_sharded());
        assert_eq!(TickPipeline::default(), TickPipeline::serial());
    }

    #[test]
    fn run_tasks_is_thread_count_invariant() {
        let work = |_, task: &mut u64| {
            // Uneven per-task cost so scheduling actually varies.
            let mut acc = *task;
            for i in 0..(*task % 7) * 1_000 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            *task = acc;
        };
        let input: Vec<u64> = (0..37).collect();
        let serial = run_tasks(input.clone(), 1, work);
        for threads in [2, 4, 8] {
            assert_eq!(run_tasks(input.clone(), threads, work), serial);
        }
    }

    #[test]
    fn run_tasks_handles_empty_and_single_inputs() {
        let bump = |_, t: &mut i32| *t += 1;
        assert!(run_tasks(Vec::<i32>::new(), 4, bump).is_empty());
        assert_eq!(run_tasks(vec![41], 4, bump), vec![42]);
    }

    #[test]
    #[should_panic(expected = "shard worker panicked")]
    fn run_tasks_propagates_worker_panics() {
        let _ = run_tasks(vec![0u32, 1, 2, 3], 2, |_, t| {
            assert!(*t != 2, "boom");
        });
    }
}
