//! The terrain simulator: one game tick of terrain simulation.
//!
//! This is element 5 of the paper's operational model (Figure 4): "Terrain
//! Simulation is largely independent from player input, and is instead driven
//! by terrain state updates. When a terrain state update occurs, the Terrain
//! Simulation applies its simulation rules to the new state. […] These rules
//! trigger in a loop, where each iteration informs the adjacent terrain."
//!
//! [`TerrainSimulator::tick`] drains the world's update queues, dispatches
//! each update to the appropriate rule module (physics, fluid, redstone,
//! growth), performs lighting recomputation for the blocks that changed, and
//! returns a [`TerrainTickReport`] describing how much work was done plus any
//! [`TerrainEvent`]s that other subsystems (entities, players) must react to.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockKind};
use crate::generation::ChunkGenerator;
use crate::pool::PoolScope;
use crate::pos::BlockPos;
use crate::region::Region;
use crate::scratch::{LightPassScratch, TickScratch};
use crate::shard::{FrozenChunks, ShardMap, ShardWorld, TerrainView, TickPipeline};
use crate::update::{BlockUpdate, UpdateKind};
use crate::world::{ShardStore, World, WorldSnapshot};
use crate::{fluid, growth, light, physics, redstone};

/// An event produced by terrain simulation that concerns other subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerrainEvent {
    /// A harvestable block was broken by a piston; an item entity representing
    /// it should be spawned.
    BlockHarvested {
        /// Where the block was.
        pos: BlockPos,
        /// What kind of block it was.
        kind: BlockKind,
    },
    /// A dispenser ejected an item; an item entity should be spawned.
    ItemDispensed {
        /// The dispenser position.
        pos: BlockPos,
    },
    /// A TNT block was ignited (removed from the terrain); a primed TNT entity
    /// should be spawned in its place.
    TntIgnited {
        /// Where the TNT block was.
        pos: BlockPos,
    },
}

/// Counters describing the terrain work done in one game tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TerrainTickReport {
    /// Neighbour-changed updates processed.
    pub neighbor_updates: u64,
    /// Scheduled updates processed.
    pub scheduled_updates: u64,
    /// Random ticks dispatched to plants.
    pub random_ticks: u64,
    /// Blocks newly placed this tick (old was air).
    pub blocks_added: u64,
    /// Blocks removed this tick (new is air).
    pub blocks_removed: u64,
    /// Blocks whose state changed in place.
    pub blocks_updated: u64,
    /// Positions visited by lighting recomputation.
    pub light_positions: u64,
    /// Fluid spread steps performed.
    pub fluid_spreads: u64,
    /// Redstone signal propagation steps performed.
    pub redstone_propagations: u64,
    /// Plant growth events.
    pub growths: u64,
    /// Raw world positions read by the rules.
    pub blocks_scanned: u64,
    /// Chunks generated during this tick (lazy generation near players).
    pub chunks_generated: u64,
    /// Whether the per-tick update budget was exhausted (cascade truncated).
    pub update_budget_exhausted: bool,
}

impl TerrainTickReport {
    /// Total number of block updates processed, regardless of origin.
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.neighbor_updates + self.scheduled_updates + self.random_ticks
    }

    /// Abstract work units represented by this report, before any
    /// server-flavor or environment scaling.
    ///
    /// The weights reflect the relative cost of each operation class in real
    /// MLG servers: block updates and light floods are cheap individually,
    /// chunk generation is expensive, and raw scans are nearly free.
    #[must_use]
    pub fn base_work_units(&self) -> u64 {
        self.neighbor_updates * 12
            + self.scheduled_updates * 14
            + self.random_ticks * 4
            + self.blocks_added * 25
            + self.blocks_removed * 25
            + self.blocks_updated * 10
            + self.light_positions * 2
            + self.fluid_spreads * 18
            + self.redstone_propagations * 16
            + self.growths * 20
            + self.blocks_scanned
            + self.chunks_generated * 4_000
    }

    /// Merges another report into this one (summing every counter).
    pub fn merge(&mut self, other: &TerrainTickReport) {
        self.neighbor_updates += other.neighbor_updates;
        self.scheduled_updates += other.scheduled_updates;
        self.random_ticks += other.random_ticks;
        self.blocks_added += other.blocks_added;
        self.blocks_removed += other.blocks_removed;
        self.blocks_updated += other.blocks_updated;
        self.light_positions += other.light_positions;
        self.fluid_spreads += other.fluid_spreads;
        self.redstone_propagations += other.redstone_propagations;
        self.growths += other.growths;
        self.blocks_scanned += other.blocks_scanned;
        self.chunks_generated += other.chunks_generated;
        self.update_budget_exhausted |= other.update_budget_exhausted;
    }
}

/// Result of detonating an explosion in the world.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplosionOutcome {
    /// Number of blocks destroyed.
    pub blocks_destroyed: u64,
    /// Positions of TNT blocks ignited by the blast (chain reaction).
    pub tnt_ignited: Vec<BlockPos>,
    /// Number of positions examined by the blast.
    pub blocks_scanned: u64,
}

/// Destroys terrain in a spherical blast of the given `power` (radius in
/// blocks) centred at `center`.
///
/// TNT blocks caught in the blast are not destroyed but *ignited*: they are
/// removed from the terrain and reported in
/// [`ExplosionOutcome::tnt_ignited`] so the caller can spawn primed TNT
/// entities — this is the chain-reaction mechanism that makes the TNT
/// workload explode "a large section of TNT" from a single trigger.
pub fn explode(world: &mut World, center: BlockPos, power: u32) -> ExplosionOutcome {
    let mut outcome = ExplosionOutcome::default();
    let radius = power as i32;
    let region = Region::cube_around(center, radius);
    let radius_sq = u64::from(power) * u64::from(power);
    for pos in region.iter().collect::<Vec<_>>() {
        outcome.blocks_scanned += 1;
        if pos.distance_squared(center) > radius_sq {
            continue;
        }
        let block = world.block(pos);
        if block.is_air() || !block.kind().is_destructible() {
            continue;
        }
        if block.kind() == BlockKind::Tnt {
            world.set_block(pos, Block::AIR);
            outcome.tnt_ignited.push(pos);
        } else {
            world.set_block(pos, Block::AIR);
            outcome.blocks_destroyed += 1;
        }
    }
    outcome
}

/// Configuration and state of the terrain simulation stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TerrainSimulator {
    /// How many random ticks each loaded chunk receives per game tick.
    pub random_ticks_per_chunk: u32,
    /// Safety limit on the number of block updates processed in one tick.
    /// Real servers have no such limit, but an unbounded cascade would hang
    /// the simulation; the limit is high enough that only pathological
    /// workloads (lag machines on slow nodes) ever reach it.
    pub max_updates_per_tick: u32,
    /// Whether lighting is recomputed eagerly for every change (vanilla
    /// behaviour) or deferred/batched (PaperMC-style optimization).
    pub eager_lighting: bool,
}

impl Default for TerrainSimulator {
    fn default() -> Self {
        TerrainSimulator {
            random_ticks_per_chunk: 3,
            max_updates_per_tick: 200_000,
            eager_lighting: true,
        }
    }
}

impl TerrainSimulator {
    /// Creates a simulator with default (vanilla-like) settings.
    #[must_use]
    pub fn new() -> Self {
        TerrainSimulator::default()
    }

    /// Runs one tick of terrain simulation over the world.
    ///
    /// Returns the work report and the events other subsystems must handle.
    /// Allocates fresh scratch buffers; the server's tick loop uses
    /// [`TerrainSimulator::tick_with`] to recycle them instead.
    pub fn tick(&self, world: &mut World) -> (TerrainTickReport, Vec<TerrainEvent>) {
        self.tick_with(world, &mut TickScratch::new())
    }

    /// Runs one tick of terrain simulation using caller-provided scratch
    /// buffers. Bit-identical to [`TerrainSimulator::tick`].
    pub fn tick_with(
        &self,
        world: &mut World,
        scratch: &mut TickScratch,
    ) -> (TerrainTickReport, Vec<TerrainEvent>) {
        let mut report = TerrainTickReport::default();
        let mut events = Vec::new();
        let changes_before = world.changes().len();
        let mut processed: u32 = 0;

        // 1. Scheduled updates that became due this tick.
        let current_tick = world.current_tick();
        let due = world.updates_mut().pop_due(current_tick);
        for update in due {
            report.scheduled_updates += 1;
            processed += 1;
            self.dispatch(world, update, &mut report, &mut events);
        }

        // 2. Immediate neighbour updates, including any produced while
        //    processing — this is the cascading simulation-rule loop.
        while let Some(update) = world.updates_mut().pop_immediate() {
            if processed >= self.max_updates_per_tick {
                report.update_budget_exhausted = true;
                break;
            }
            report.neighbor_updates += 1;
            processed += 1;
            self.dispatch(world, update, &mut report, &mut events);
        }

        // 3. Random ticks (plant growth).
        let random_positions = world.pick_random_tick_positions(self.random_ticks_per_chunk);
        for pos in random_positions {
            let kind = world.block_if_loaded(pos).kind();
            if growth::reacts_to_random_tick(kind) {
                report.random_ticks += 1;
                let outcome = growth::apply_random_tick(world, pos);
                report.blocks_scanned += u64::from(outcome.blocks_scanned);
                if outcome.grew {
                    report.growths += 1;
                }
            }
        }

        // 4. Classify the changes made this tick and relight around them.
        // Classification only reads the change log, so the relight positions
        // can be batched into one cached pass instead of interleaving.
        scratch.relight_positions.clear();
        for change in &world.changes()[changes_before..] {
            match (change.old.is_air(), change.new.is_air()) {
                (true, false) => report.blocks_added += 1,
                (false, true) => report.blocks_removed += 1,
                _ => report.blocks_updated += 1,
            }
            if self.eager_lighting {
                scratch.relight_positions.push(change.pos);
            }
        }
        report.light_positions +=
            relight_positions_serial(world, &scratch.relight_positions, &mut scratch.flood);

        report.chunks_generated += u64::from(world.chunks_generated_this_tick());
        (report, events)
    }

    fn dispatch<W: TerrainView>(
        &self,
        world: &mut W,
        update: BlockUpdate,
        report: &mut TerrainTickReport,
        events: &mut Vec<TerrainEvent>,
    ) {
        let kind = world.block(update.pos).kind();
        report.blocks_scanned += 1;
        if physics::reacts_to_updates(kind) {
            let out = physics::apply_gravity(world, update.pos);
            report.blocks_scanned += u64::from(out.blocks_scanned);
        } else if fluid::reacts_to_updates(kind) {
            let out = fluid::apply_fluid(world, update.pos);
            report.blocks_scanned += u64::from(out.blocks_scanned);
            report.fluid_spreads += u64::from(out.spread_to + out.solidified);
        } else if redstone::reacts_to_updates(kind) {
            let out = redstone::apply_redstone(world, update.pos, update.kind);
            report.blocks_scanned += u64::from(out.blocks_scanned);
            report.redstone_propagations += u64::from(out.propagations) + u64::from(out.changed);
            events.extend(out.events);
        } else if kind == BlockKind::Tnt && update.kind == UpdateKind::Scheduled {
            // A scheduled tick on a TNT block means it was fused for ignition.
            world.set_block(update.pos, Block::AIR);
            events.push(TerrainEvent::TntIgnited { pos: update.pos });
        }
    }

    /// Runs one tick of terrain simulation through the sharded pipeline.
    ///
    /// The tick is decomposed into deterministic phases:
    ///
    /// 1. **Cascade rounds.** Pending updates are routed by position:
    ///    updates whose 3×3 chunk neighbourhood lies inside one shard go to
    ///    that shard's queue; boundary updates are escalated to a serial
    ///    queue. Shard queues are processed *concurrently* by the worker
    ///    pool — each worker owns its shard's chunks outright, so there is
    ///    no cross-thread interaction — and results (reports, changes,
    ///    events, scheduled ticks, outbound cross-shard pushes) are merged
    ///    in canonical shard order at the round barrier. The serial queue
    ///    is then processed against the whole world; cascades that re-enter
    ///    shard interiors start the next round.
    /// 2. **Random ticks.** Interior picks are applied per shard in
    ///    parallel (their next-tick cascades buffered and re-queued in
    ///    shard order), boundary picks serially.
    /// 3. **Classification and lighting.** The canonical change log is
    ///    classified serially; relighting is a read-only pass over a frozen
    ///    world snapshot and fans out across the worker pool (per-change
    ///    relights are independent, so any partition sums identically).
    ///    One deliberate difference from [`TerrainSimulator::tick`]: the
    ///    frozen snapshot reads unloaded chunks as air, while the serial
    ///    path lazily *generates* chunks its light floods wander into — so
    ///    for changes near the edge of the loaded area the two paths can
    ///    report different `light_positions`/`chunks_generated`. (Both
    ///    behaviours are deterministic; the sharded one avoids generating
    ///    terrain merely because a light scan looked at it.)
    ///
    /// Because work assignment, merge order and every per-shard computation
    /// depend only on the shard map — never on scheduling — the result is
    /// **bit-identical at any thread count**; `pipeline.threads() == 1` is
    /// the sequential reference path. Changing the *shard count* is a
    /// modeled-architecture change (like Folia's region count) and is
    /// allowed to change scheduling, exactly as the serial-vs-sharded
    /// comparison in the paper's sense would.
    pub fn tick_sharded(&self, world: &mut World, pipeline: &TickPipeline) -> ShardedTerrainTick {
        self.tick_sharded_with(world, pipeline, &mut TickScratch::new())
    }

    /// Runs one sharded tick using caller-provided scratch buffers (cascade
    /// queues, shard batches, relight buffers). Bit-identical to
    /// [`TerrainSimulator::tick_sharded`]; the server's tick loop uses this
    /// variant so steady-state ticks recycle queue capacity instead of
    /// allocating per round.
    pub fn tick_sharded_with(
        &self,
        world: &mut World,
        pipeline: &TickPipeline,
        scratch: &mut TickScratch,
    ) -> ShardedTerrainTick {
        let map = pipeline.shard_map();
        world.reshard(map.clone());
        let shard_count = map.count();
        let scope = pipeline.scope();
        let tick = world.current_tick();
        // Phase context for the pool: owned copies of everything the shard
        // workers need, built once per tick and threaded through every
        // parallel phase (persistent-pool jobs cannot borrow the tick's
        // stack; see `crate::pool`).
        let mut phase_ctx = TerrainPhaseCtx {
            sim: self.clone(),
            map: map.clone(),
            generator: world.generator_arc(),
            tick,
        };
        let budget = u64::from(self.max_updates_per_tick);

        let mut report = TerrainTickReport::default();
        let mut events: Vec<TerrainEvent> = Vec::new();
        let mut per_shard_work = vec![0u64; shard_count];
        let mut serial_work = 0u64;
        let mut processed_total = 0u64;
        let changes_before = world.changes().len();

        // ---- Phase 1: cascade rounds ------------------------------------
        // All round-local queues live in the scratch arena: `pending` is
        // drained at the top of each round and `next_pending` swapped in at
        // the bottom, shard batches are moved into the tasks and their
        // (drained, capacity-bearing) queues moved back after the merge.
        scratch.pending.clear();
        scratch.next_pending.clear();
        scratch.serial_batch.clear();
        if scratch.shard_batches.len() != shard_count {
            scratch
                .shard_batches
                .resize_with(shard_count, VecDeque::new);
        }
        for batch in &mut scratch.shard_batches {
            batch.clear();
        }
        scratch.pending.extend(world.updates_mut().pop_due(tick));
        while let Some(update) = world.updates_mut().pop_immediate() {
            scratch.pending.push_back(update);
        }

        'rounds: while !scratch.pending.is_empty() {
            for update in scratch.pending.drain(..) {
                match map.interior_shard(update.pos.chunk()) {
                    Some(s) => scratch.shard_batches[s].push_back(update),
                    None => scratch.serial_batch.push_back(update),
                }
            }
            if processed_total >= budget {
                report.update_budget_exhausted = true;
                let requeued = scratch
                    .shard_batches
                    .iter_mut()
                    .flat_map(|b| b.drain(..))
                    .chain(scratch.serial_batch.drain(..));
                requeue_updates(world, requeued, tick);
                break 'rounds;
            }
            let remaining = budget - processed_total;
            // Split the remaining budget across the shards that have work
            // (each gets at least 1 so rounds always progress): without the
            // split, N shards could process N x max_updates_per_tick in one
            // round, silently inflating the per-tick budget under sharding.
            let active = scratch
                .shard_batches
                .iter()
                .filter(|b| !b.is_empty())
                .count()
                .max(1) as u64;
            let per_shard_cap = (remaining / active).max(1);

            // Parallel phase: shards with work, processed by the pool.
            let mut tasks: Vec<TerrainShardTask> = Vec::new();
            for (s, batch) in scratch.shard_batches.iter_mut().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                tasks.push(TerrainShardTask {
                    shard: s,
                    store: world.take_shard_store(s),
                    batch: std::mem::take(batch),
                    cap: per_shard_cap,
                    report: TerrainTickReport::default(),
                    events: Vec::new(),
                    changes: Vec::new(),
                    outbound: Vec::new(),
                    scheduled: Vec::new(),
                    leftover: Vec::new(),
                    chunks_generated: 0,
                    processed: 0,
                });
            }
            if !tasks.is_empty() {
                (tasks, phase_ctx) =
                    scope.run_tasks_ctx(tasks, phase_ctx, |_, task, ctx: &TerrainPhaseCtx| {
                        ctx.sim
                            .process_shard_batch(task, &ctx.map, &*ctx.generator, ctx.tick);
                    });
            }

            // Barrier merge, in canonical (ascending shard) order.
            for task in tasks {
                world.put_shard_store(task.shard, task.store);
                report.merge(&task.report);
                events.extend(task.events);
                world.append_changes(task.changes);
                for (pos, due) in task.scheduled {
                    world.schedule_tick_at(pos, due);
                }
                for pos in task.outbound {
                    scratch.next_pending.push_back(BlockUpdate::neighbor(pos));
                }
                scratch.next_pending.extend(task.leftover);
                world.note_chunks_generated(task.chunks_generated);
                per_shard_work[task.shard] += task.processed;
                processed_total += task.processed;
                // The batch was drained inside the worker; returning it to
                // its slot keeps the queue's capacity for the next round.
                scratch.shard_batches[task.shard] = task.batch;
            }

            // Serial phase: escalated boundary updates on the full world.
            while let Some(update) = scratch.serial_batch.pop_front() {
                // Scheduled updates stay budget-exempt here too.
                if update.kind != UpdateKind::Scheduled && processed_total >= budget {
                    report.update_budget_exhausted = true;
                    world.push_neighbor_update(update.pos);
                    continue;
                }
                match update.kind {
                    UpdateKind::Scheduled => report.scheduled_updates += 1,
                    _ => report.neighbor_updates += 1,
                }
                processed_total += 1;
                serial_work += 1;
                self.dispatch(world, update, &mut report, &mut events);
                while let Some(cascaded) = world.updates_mut().pop_immediate() {
                    match map.interior_shard(cascaded.pos.chunk()) {
                        Some(_) => scratch.next_pending.push_back(cascaded),
                        None => scratch.serial_batch.push_back(cascaded),
                    }
                }
            }
            std::mem::swap(&mut scratch.pending, &mut scratch.next_pending);
        }

        // ---- Phase 2: random ticks --------------------------------------
        let picks = world.pick_random_tick_positions(self.random_ticks_per_chunk);
        let mut shard_picks: Vec<Vec<BlockPos>> = vec![Vec::new(); shard_count];
        let mut serial_picks: Vec<BlockPos> = Vec::new();
        for pos in picks {
            match map.interior_shard(pos.chunk()) {
                Some(s) => shard_picks[s].push(pos),
                None => serial_picks.push(pos),
            }
        }
        let mut tasks: Vec<RandomTickShardTask> = Vec::new();
        for (s, picks) in shard_picks.into_iter().enumerate() {
            if picks.is_empty() {
                continue;
            }
            tasks.push(RandomTickShardTask {
                shard: s,
                store: world.take_shard_store(s),
                picks,
                random_ticks: 0,
                growths: 0,
                blocks_scanned: 0,
                changes: Vec::new(),
                outbound: Vec::new(),
                scheduled: Vec::new(),
                chunks_generated: 0,
            });
        }
        if !tasks.is_empty() {
            // Last parallel consumer of the context; it can be moved in.
            tasks = scope
                .run_tasks_ctx(tasks, phase_ctx, |_, task, ctx: &TerrainPhaseCtx| {
                    process_shard_random_ticks(task, &ctx.map, &*ctx.generator, ctx.tick);
                })
                .0;
        }
        for task in tasks {
            world.put_shard_store(task.shard, task.store);
            report.random_ticks += task.random_ticks;
            report.growths += task.growths;
            report.blocks_scanned += task.blocks_scanned;
            world.append_changes(task.changes);
            // Growth cascades carry over to the next tick, exactly like the
            // serial path's.
            for pos in task.outbound {
                world.push_neighbor_update(pos);
            }
            for (pos, due) in task.scheduled {
                world.schedule_tick_at(pos, due);
            }
            world.note_chunks_generated(task.chunks_generated);
            per_shard_work[task.shard] += task.random_ticks;
        }
        for pos in serial_picks {
            let kind = world.block_if_loaded(pos).kind();
            if growth::reacts_to_random_tick(kind) {
                report.random_ticks += 1;
                serial_work += 1;
                let outcome = growth::apply_random_tick(world, pos);
                report.blocks_scanned += u64::from(outcome.blocks_scanned);
                if outcome.grew {
                    report.growths += 1;
                }
            }
        }

        // ---- Phase 3: classification and lighting -----------------------
        scratch.relight_positions.clear();
        for change in &world.changes()[changes_before..] {
            match (change.old.is_air(), change.new.is_air()) {
                (true, false) => report.blocks_added += 1,
                (false, true) => report.blocks_removed += 1,
                _ => report.blocks_updated += 1,
            }
            if self.eager_lighting {
                scratch.relight_positions.push(change.pos);
            }
        }
        report.light_positions += relight_misses_frozen(
            world,
            &scratch.relight_positions,
            &scope,
            &mut scratch.light,
        );

        report.chunks_generated += u64::from(world.chunks_generated_this_tick());
        ShardedTerrainTick {
            report,
            events,
            per_shard_work,
            serial_work,
        }
    }

    /// Processes one shard's routed update batch against its own chunks.
    fn process_shard_batch(
        &self,
        task: &mut TerrainShardTask,
        map: &ShardMap,
        generator: &dyn ChunkGenerator,
        tick: u64,
    ) {
        let store = std::mem::take(&mut task.store);
        let mut view = ShardWorld::new(task.shard, map, store, generator, tick, false);
        for update in task.batch.drain(..) {
            view.push_local(update);
        }
        while let Some(update) = view.pop_local() {
            // Scheduled updates are budget-exempt, mirroring the serial
            // path (which processes every due update): truncating them
            // would silently defuse TNT and stall repeaters.
            if update.kind != UpdateKind::Scheduled && task.processed >= task.cap {
                // Over this round's fair-share cap: carry the update to the
                // next round. Whether the *tick* budget was truly exhausted
                // is decided by the requeue paths, not here — leftovers
                // often complete in a later round of the same tick.
                task.leftover.push(update);
                continue;
            }
            match update.kind {
                UpdateKind::Scheduled => task.report.scheduled_updates += 1,
                _ => task.report.neighbor_updates += 1,
            }
            task.processed += 1;
            self.dispatch(&mut view, update, &mut task.report, &mut task.events);
        }
        task.leftover.extend(view.drain_local());
        task.chunks_generated = view.chunks_generated;
        task.changes = std::mem::take(&mut view.changes);
        task.outbound = std::mem::take(&mut view.outbound);
        task.scheduled = std::mem::take(&mut view.scheduled);
        task.store = view.into_store();
    }
}

/// Result of one sharded terrain tick: the merged report and events plus
/// the per-shard work split the compute model uses for its load-balance
/// floor.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTerrainTick {
    /// The merged work report (same semantics as [`TerrainSimulator::tick`]).
    pub report: TerrainTickReport,
    /// Events for other subsystems, in canonical shard-then-serial order.
    pub events: Vec<TerrainEvent>,
    /// Updates + random ticks processed inside each shard's parallel phase.
    pub per_shard_work: Vec<u64>,
    /// Updates + random ticks escalated to the serial merge phase.
    pub serial_work: u64,
}

/// Shared context of the parallel terrain phases (cascade rounds and
/// random ticks): owned copies of the simulator config, shard map and a
/// generator handle, so the phase can execute on the persistent worker
/// pool, whose jobs cannot borrow the tick's stack. Threaded through
/// [`PoolScope::run_tasks_ctx`] and handed back between phases.
struct TerrainPhaseCtx {
    sim: TerrainSimulator,
    map: ShardMap,
    generator: Arc<dyn ChunkGenerator>,
    tick: u64,
}

struct TerrainShardTask {
    shard: usize,
    store: ShardStore,
    batch: VecDeque<BlockUpdate>,
    cap: u64,
    report: TerrainTickReport,
    events: Vec<TerrainEvent>,
    changes: Vec<crate::world::BlockChange>,
    outbound: Vec<BlockPos>,
    scheduled: Vec<(BlockPos, u64)>,
    leftover: Vec<BlockUpdate>,
    chunks_generated: u32,
    processed: u64,
}

struct RandomTickShardTask {
    shard: usize,
    store: ShardStore,
    picks: Vec<BlockPos>,
    random_ticks: u64,
    growths: u64,
    blocks_scanned: u64,
    changes: Vec<crate::world::BlockChange>,
    outbound: Vec<BlockPos>,
    scheduled: Vec<(BlockPos, u64)>,
    chunks_generated: u32,
}

struct LightSliceTask {
    positions: Vec<BlockPos>,
    /// Positions visited per input position, in input order — kept
    /// per-position (not pre-summed) so the caller can memoize each result
    /// in the world's relight cache.
    results: Vec<u32>,
}

/// Relights every position in `positions` against a frozen snapshot of
/// `world`, fanning the independent per-change passes out over the given
/// execution scope, and returns the total number of positions visited.
///
/// This is the lighting stage of the sharded tick pipeline: because each
/// relight is a read-only pass over the same snapshot, the sum is
/// partition-invariant — the slicing can follow the worker count without
/// affecting the result. The game server also calls it directly for the
/// cross-tick *pipelined* lighting stage (positions queued by the previous
/// tick, consumed against the current snapshot while the next tick's player
/// stage runs in the compute model).
///
/// The snapshot is *moved*, not copied: the world's chunks travel into the
/// phase context via [`World::snapshot_chunks`] (which is why this takes
/// `&mut World`) and are restored before returning, so persistent pool
/// workers can read them without borrowing the world. The frozen snapshot
/// reads unloaded chunks as air instead of generating them — see
/// [`TerrainSimulator::tick_sharded`] for why that is a deliberate
/// difference from the eager serial path.
#[must_use]
pub fn relight_positions_frozen(
    world: &mut World,
    positions: &[BlockPos],
    scope: &PoolScope<'_>,
) -> u64 {
    relight_misses_frozen(world, positions, scope, &mut LightPassScratch::new())
}

/// [`relight_positions_frozen`] with caller-provided scratch buffers
/// (the server's per-tick arena). Bit-identical to the allocating wrapper.
#[must_use]
pub fn relight_positions_frozen_with(
    world: &mut World,
    positions: &[BlockPos],
    scope: &PoolScope<'_>,
    scratch: &mut TickScratch,
) -> u64 {
    relight_misses_frozen(world, positions, scope, &mut scratch.light)
}

/// [`relight_positions_frozen`] with caller-provided miss-tracking scratch.
///
/// The pass consults the world's relight cache first: a position whose
/// 17×17-column flood window is untouched since its last computation (no
/// light-relevant opacity change, tracked per chunk column) reuses the cached
/// visit count — bit-identical by construction, since an untouched window
/// floods identically. Only cache misses are deduplicated, sliced across the
/// scope's workers against the frozen snapshot, and folded back into the
/// cache. Duplicate positions in one pass multiply the single computed count,
/// which equals computing each occurrence against the same snapshot.
pub(crate) fn relight_misses_frozen(
    world: &mut World,
    positions: &[BlockPos],
    scope: &PoolScope<'_>,
    scratch: &mut LightPassScratch,
) -> u64 {
    if positions.is_empty() {
        return 0;
    }
    world.begin_relight_pass();
    scratch.clear();
    let mut total: u64 = 0;
    for &pos in positions {
        if let Some(&slot) = scratch.miss_index.get(&pos) {
            scratch.miss_counts[slot] += 1;
            continue;
        }
        match world.cached_relight(pos, true) {
            Some(count) => total += u64::from(count),
            None => {
                scratch.miss_index.insert(pos, scratch.misses.len());
                scratch.misses.push(pos);
                scratch.miss_counts.push(1);
            }
        }
    }
    if !scratch.misses.is_empty() {
        let slice_len = scratch
            .misses
            .len()
            .div_ceil(scope.threads().max(1) as usize);
        let slices: Vec<LightSliceTask> = scratch
            .misses
            .chunks(slice_len.max(1))
            .map(|positions| LightSliceTask {
                positions: positions.to_vec(),
                results: Vec::new(),
            })
            .collect();
        let snapshot = world.snapshot_chunks();
        let (slices, snapshot) =
            scope.run_tasks_ctx(slices, snapshot, |_, task, snapshot: &WorldSnapshot| {
                let mut frozen = FrozenChunks(snapshot);
                let mut flood = light::FloodScratch::new();
                task.results.reserve(task.positions.len());
                for pos in &task.positions {
                    let lr = light::relight_after_change_with(&mut frozen, *pos, &mut flood);
                    task.results.push(lr.total_positions());
                }
            });
        world.restore_chunks(snapshot);
        // Fold per-position results back in input (slot) order: slicing
        // followed the worker count, but the flattened result order did not.
        let mut slot = 0usize;
        for task in &slices {
            for &count in &task.results {
                total += u64::from(count) * u64::from(scratch.miss_counts[slot]);
                world.insert_relight(scratch.misses[slot], true, count);
                slot += 1;
            }
        }
    }
    world.end_relight_pass();
    total
}

/// Serial (lazily generating) counterpart of
/// [`relight_positions_frozen_with`], used by the vanilla-flavor tick: cache
/// hits are validated the same way; misses flood the live world — generating
/// chunks exactly where an uncached flood would — and are memoized under the
/// lazy-mode cache key, which is kept separate from the frozen-mode key
/// because the two modes read unloaded chunks differently.
fn relight_positions_serial(
    world: &mut World,
    positions: &[BlockPos],
    flood: &mut light::FloodScratch,
) -> u64 {
    if positions.is_empty() {
        return 0;
    }
    world.begin_relight_pass();
    let mut total: u64 = 0;
    for &pos in positions {
        if let Some(count) = world.cached_relight(pos, false) {
            total += u64::from(count);
        } else {
            let count = light::relight_after_change_with(world, pos, flood).total_positions();
            world.insert_relight(pos, false, count);
            total += u64::from(count);
        }
    }
    world.end_relight_pass();
    total
}

/// Applies one shard's random-tick picks, deferring every cascade push.
fn process_shard_random_ticks(
    task: &mut RandomTickShardTask,
    map: &ShardMap,
    generator: &dyn ChunkGenerator,
    tick: u64,
) {
    let store = std::mem::take(&mut task.store);
    let mut view = ShardWorld::new(task.shard, map, store, generator, tick, true);
    for pos in std::mem::take(&mut task.picks) {
        let kind = TerrainView::block_if_loaded(&view, pos).kind();
        if growth::reacts_to_random_tick(kind) {
            task.random_ticks += 1;
            let outcome = growth::apply_random_tick(&mut view, pos);
            task.blocks_scanned += u64::from(outcome.blocks_scanned);
            if outcome.grew {
                task.growths += 1;
            }
        }
    }
    task.chunks_generated = view.chunks_generated;
    task.changes = std::mem::take(&mut view.changes);
    task.outbound = std::mem::take(&mut view.outbound);
    task.scheduled = std::mem::take(&mut view.scheduled);
    task.store = view.into_store();
}

/// Returns unprocessed updates to the world's queues for the next tick
/// (budget exhaustion): scheduled updates re-fire as scheduled next tick so
/// fuses are not lost, neighbour updates re-queue as immediates.
fn requeue_updates(world: &mut World, updates: impl IntoIterator<Item = BlockUpdate>, tick: u64) {
    for update in updates {
        match update.kind {
            UpdateKind::Scheduled => world.schedule_tick_at(update.pos, tick + 1),
            _ => world.push_neighbor_update(update.pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;
    use crate::pos::ChunkPos;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn idle_world_does_minimal_work() {
        let mut w = world();
        w.ensure_area(ChunkPos::new(0, 0), 1);
        w.advance_tick();
        let sim = TerrainSimulator::new();
        let (report, events) = sim.tick(&mut w);
        assert_eq!(report.neighbor_updates, 0);
        assert_eq!(report.scheduled_updates, 0);
        assert!(events.is_empty());
        // Random ticks still happen, but on a flat grass world nothing grows.
        assert_eq!(report.growths, 0);
    }

    #[test]
    fn placed_block_cascades_updates() {
        let mut w = world();
        let sim = TerrainSimulator::new();
        w.set_block(BlockPos::new(4, 80, 4), Block::simple(BlockKind::Sand));
        w.advance_tick();
        let (report, _) = sim.tick(&mut w);
        assert!(report.neighbor_updates >= 7);
        // The sand fell: one removal at the origin and one addition below.
        assert!(report.blocks_added >= 1);
        assert!(report.blocks_removed >= 1);
        assert_eq!(w.block(BlockPos::new(4, 61, 4)).kind(), BlockKind::Sand);
    }

    #[test]
    fn scheduled_tnt_ignition_produces_event() {
        let mut w = world();
        let sim = TerrainSimulator::new();
        let pos = BlockPos::new(2, 61, 2);
        w.set_block_silent(pos, Block::simple(BlockKind::Tnt));
        w.schedule_tick(pos, 1);
        w.advance_tick();
        let (_, events) = sim.tick(&mut w);
        assert_eq!(events, vec![TerrainEvent::TntIgnited { pos }]);
        assert_eq!(w.block(pos), Block::AIR);
    }

    #[test]
    fn clock_driven_work_alternates_between_ticks() {
        let mut w = world();
        let sim = TerrainSimulator::new();
        // A period-2 clock surrounded by dust: every other tick it toggles and
        // pushes updates into the dust, mirroring the lag-machine behaviour.
        let clock = BlockPos::new(4, 61, 4);
        w.set_block_silent(clock, Block::with_state(BlockKind::Comparator, 2));
        for n in clock.horizontal_neighbors() {
            w.set_block_silent(n, Block::simple(BlockKind::RedstoneDust));
        }
        w.schedule_tick(clock, 1);
        let mut per_tick_updates = Vec::new();
        for _ in 0..8 {
            w.advance_tick();
            let (report, _) = sim.tick(&mut w);
            per_tick_updates.push(report.total_updates());
        }
        let busy_ticks = per_tick_updates.iter().filter(|&&u| u > 0).count();
        let idle_ticks = per_tick_updates.iter().filter(|&&u| u == 0).count();
        assert!(
            busy_ticks >= 3,
            "clock should fire repeatedly: {per_tick_updates:?}"
        );
        assert!(
            idle_ticks >= 3,
            "clock should idle between firings: {per_tick_updates:?}"
        );
    }

    #[test]
    fn explosion_destroys_terrain_and_ignites_tnt() {
        let mut w = world();
        let center = BlockPos::new(8, 60, 8);
        let tnt_pos = BlockPos::new(10, 60, 8);
        w.set_block_silent(tnt_pos, Block::simple(BlockKind::Tnt));
        let outcome = explode(&mut w, center, 4);
        assert!(outcome.blocks_destroyed > 10);
        assert_eq!(outcome.tnt_ignited, vec![tnt_pos]);
        assert_eq!(w.block(center), Block::AIR);
        // Bedrock at y=0 is out of range, and would be indestructible anyway.
        assert_eq!(w.block(BlockPos::new(8, 0, 8)).kind(), BlockKind::Bedrock);
    }

    #[test]
    fn explosion_respects_indestructible_blocks() {
        let mut w = world();
        let center = BlockPos::new(8, 61, 8);
        let obsidian = BlockPos::new(9, 61, 8);
        w.set_block_silent(obsidian, Block::simple(BlockKind::Obsidian));
        explode(&mut w, center, 3);
        assert_eq!(w.block(obsidian).kind(), BlockKind::Obsidian);
    }

    #[test]
    fn update_budget_truncates_runaway_cascades() {
        let mut w = world();
        let sim = TerrainSimulator {
            max_updates_per_tick: 10,
            ..TerrainSimulator::default()
        };
        // Dump a large water cube in the air: the cascade exceeds the budget.
        let region = Region::new(BlockPos::new(0, 80, 0), BlockPos::new(5, 85, 5));
        for pos in region.iter().collect::<Vec<_>>() {
            w.set_block(pos, Block::simple(BlockKind::Water));
        }
        w.advance_tick();
        let (report, _) = sim.tick(&mut w);
        assert!(report.update_budget_exhausted);
        assert!(report.neighbor_updates <= 10);
    }

    #[test]
    fn report_merge_sums_counters() {
        let mut a = TerrainTickReport {
            neighbor_updates: 5,
            blocks_added: 2,
            ..TerrainTickReport::default()
        };
        let b = TerrainTickReport {
            neighbor_updates: 3,
            light_positions: 10,
            update_budget_exhausted: true,
            ..TerrainTickReport::default()
        };
        a.merge(&b);
        assert_eq!(a.neighbor_updates, 8);
        assert_eq!(a.blocks_added, 2);
        assert_eq!(a.light_positions, 10);
        assert!(a.update_budget_exhausted);
    }

    #[test]
    fn work_units_scale_with_activity() {
        let quiet = TerrainTickReport::default();
        let busy = TerrainTickReport {
            neighbor_updates: 100,
            blocks_added: 20,
            light_positions: 500,
            ..TerrainTickReport::default()
        };
        assert_eq!(quiet.base_work_units(), 0);
        assert!(busy.base_work_units() > 1000);
    }

    /// Builds a world with activity spanning several shard stripes: falling
    /// sand, spreading water, a redstone clock driving dust, and a fused
    /// TNT line — every rule family the cascade dispatches to.
    fn busy_world(seed: u64) -> World {
        let mut w = World::new(Box::new(FlatGenerator::grassland()), seed);
        w.ensure_area(ChunkPos::new(2, 0), 4);
        for x in [10, 40, 70] {
            for y in 70..74 {
                w.set_block(BlockPos::new(x, y, 8), Block::simple(BlockKind::Sand));
            }
            w.set_block(
                BlockPos::new(x + 3, 61, 20),
                Block::simple(BlockKind::Water),
            );
            let clock = BlockPos::new(x + 6, 61, 8);
            w.set_block_silent(clock, Block::with_state(BlockKind::Comparator, 2));
            for n in clock.horizontal_neighbors() {
                w.set_block_silent(n, Block::simple(BlockKind::RedstoneDust));
            }
            w.schedule_tick(clock, 1);
            for dx in 0..2 {
                let tnt = BlockPos::new(x + 9 + dx, 61, 12);
                w.set_block_silent(tnt, Block::simple(BlockKind::Tnt));
                w.schedule_tick(tnt, 3);
            }
        }
        w
    }

    fn world_digest(w: &World) -> (u64, usize, usize, usize) {
        (
            w.total_non_air_blocks(),
            w.count_kind(BlockKind::Sand),
            w.count_kind(BlockKind::Water),
            w.count_kind(BlockKind::Tnt),
        )
    }

    fn run_sharded(
        seed: u64,
        pipeline: &TickPipeline,
        ticks: u64,
    ) -> (
        Vec<TerrainTickReport>,
        Vec<TerrainEvent>,
        (u64, usize, usize, usize),
    ) {
        let sim = TerrainSimulator::new();
        let mut w = busy_world(seed);
        let mut reports = Vec::new();
        let mut events = Vec::new();
        for _ in 0..ticks {
            w.advance_tick();
            let out = sim.tick_sharded(&mut w, pipeline);
            assert_eq!(out.per_shard_work.len(), pipeline.shards() as usize);
            reports.push(out.report);
            events.extend(out.events);
        }
        (reports, events, world_digest(&w))
    }

    #[test]
    fn sharded_tick_is_bit_identical_across_thread_counts() {
        for shards in [1, 2, 4, 8] {
            let reference = run_sharded(11, &TickPipeline::new(shards, 1), 8);
            let parallel = run_sharded(11, &TickPipeline::new(shards, 4), 8);
            assert_eq!(
                reference, parallel,
                "shards={shards} threads=4 diverged from the sequential path"
            );
        }
    }

    #[test]
    fn sharded_tick_produces_real_parallel_phase_work() {
        let sim = TerrainSimulator::new();
        let mut w = busy_world(3);
        let pipeline = TickPipeline::new(4, 2);
        let mut parallel_work = 0u64;
        let mut serial_work = 0u64;
        for _ in 0..8 {
            w.advance_tick();
            let out = sim.tick_sharded(&mut w, &pipeline);
            parallel_work += out.per_shard_work.iter().sum::<u64>();
            serial_work += out.serial_work;
        }
        assert!(
            parallel_work > 0,
            "interior updates must reach the parallel phase"
        );
        // The busy world spans several stripes, so more than one shard sees
        // work overall (serial escalation alone would defeat the point).
        assert!(serial_work < parallel_work * 10);
    }

    #[test]
    fn single_shard_pipeline_matches_the_legacy_serial_tick() {
        let sim = TerrainSimulator::new();
        let mut legacy = busy_world(23);
        let mut sharded = busy_world(23);
        let pipeline = TickPipeline::new(1, 1);
        for _ in 0..8 {
            legacy.advance_tick();
            sharded.advance_tick();
            let (legacy_report, legacy_events) = sim.tick(&mut legacy);
            let out = sim.tick_sharded(&mut sharded, &pipeline);
            assert_eq!(legacy_report, out.report);
            assert_eq!(legacy_events, out.events);
        }
        assert_eq!(world_digest(&legacy), world_digest(&sharded));
    }

    #[test]
    fn sharded_budget_exhaustion_is_deterministic_and_preserves_fuses() {
        let sim = TerrainSimulator {
            max_updates_per_tick: 25,
            ..TerrainSimulator::default()
        };
        let run = |threads: u32| {
            let mut w = busy_world(5);
            let pipeline = TickPipeline::new(4, threads);
            let mut reports = Vec::new();
            for _ in 0..14 {
                w.advance_tick();
                reports.push(sim.tick_sharded(&mut w, &pipeline).report);
            }
            (reports, world_digest(&w))
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b);
        assert!(
            a.0.iter().any(|r| r.update_budget_exhausted),
            "tiny budget must truncate the cascade"
        );
        // All scheduled TNT fuses eventually fired despite truncation.
        assert_eq!(a.1 .3, 0, "every TNT block should have ignited");
    }

    #[test]
    fn tnt_fuses_survive_a_mid_cascade_shard_migration() {
        use crate::shard::ShardLoadReport;

        // Fused TNT in chunk (1, 1) plus a water dump big enough to exhaust
        // a tiny per-tick budget for several consecutive ticks, so the
        // partition change below lands mid-cascade.
        let fuse_positions: Vec<BlockPos> = (0..4).map(|i| BlockPos::new(20 + i, 61, 20)).collect();
        let build = |fuses: &[BlockPos]| {
            let mut w = World::new(Box::new(FlatGenerator::grassland()), 99);
            w.ensure_area(ChunkPos::new(0, 0), 3);
            let region = Region::new(BlockPos::new(4, 80, 4), BlockPos::new(9, 84, 9));
            for pos in region.iter().collect::<Vec<_>>() {
                w.set_block(pos, Block::simple(BlockKind::Water));
            }
            for (i, &pos) in fuses.iter().enumerate() {
                w.set_block_silent(pos, Block::simple(BlockKind::Tnt));
                w.schedule_tick(pos, 3 + i as u64);
            }
            w
        };
        let sim = TerrainSimulator {
            max_updates_per_tick: 30,
            ..TerrainSimulator::default()
        };
        let bounds = Some((ChunkPos::new(-3, -3), ChunkPos::new(3, 3)));

        let run = |migrate: bool| {
            let mut w = build(&fuse_positions);
            let mut pipeline = TickPipeline::adaptive(bounds, 1, 2);
            let mut detonations: Vec<(u64, BlockPos)> = Vec::new();
            let mut truncated = false;
            for tick in 1..=12u64 {
                if migrate && tick == 3 {
                    // Force a split mid-cascade: the fused chunk migrates
                    // out of the lone root leaf into a quadrant shard.
                    let before = pipeline.shard_map().shard_of_chunk(ChunkPos::new(1, 1));
                    let next = pipeline
                        .shard_map()
                        .rebalanced(&ShardLoadReport::new(vec![1]), 8)
                        .expect("root leaf splits");
                    pipeline.set_map(next);
                    let after = pipeline.shard_map().shard_of_chunk(ChunkPos::new(1, 1));
                    assert_ne!(before, after, "the fused chunk must change shards");
                }
                w.advance_tick();
                let out = sim.tick_sharded(&mut w, &pipeline);
                truncated |= out.report.update_budget_exhausted;
                for event in out.events {
                    if let TerrainEvent::TntIgnited { pos } = event {
                        detonations.push((tick, pos));
                    }
                }
            }
            assert!(truncated, "the scene must actually exhaust the budget");
            assert_eq!(w.count_kind(BlockKind::Tnt), 0, "no fuse may be lost");
            detonations.sort_unstable();
            detonations
        };

        let stable = run(false);
        let migrated = run(true);
        // Scheduled fuses are budget-exempt: every TNT detonates on its
        // exact due tick whether or not its chunk migrated mid-cascade.
        let expected: Vec<(u64, BlockPos)> = fuse_positions
            .iter()
            .enumerate()
            .map(|(i, &pos)| (3 + i as u64, pos))
            .collect();
        assert_eq!(stable, expected);
        assert_eq!(migrated, expected);
    }

    #[test]
    fn lighting_can_be_disabled() {
        let mut w = world();
        let sim = TerrainSimulator {
            eager_lighting: false,
            ..TerrainSimulator::default()
        };
        w.set_block(BlockPos::new(4, 61, 4), Block::simple(BlockKind::Stone));
        w.advance_tick();
        let (report, _) = sim.tick(&mut w);
        assert_eq!(report.light_positions, 0);
    }
}
