//! The terrain simulator: one game tick of terrain simulation.
//!
//! This is element 5 of the paper's operational model (Figure 4): "Terrain
//! Simulation is largely independent from player input, and is instead driven
//! by terrain state updates. When a terrain state update occurs, the Terrain
//! Simulation applies its simulation rules to the new state. […] These rules
//! trigger in a loop, where each iteration informs the adjacent terrain."
//!
//! [`TerrainSimulator::tick`] drains the world's update queues, dispatches
//! each update to the appropriate rule module (physics, fluid, redstone,
//! growth), performs lighting recomputation for the blocks that changed, and
//! returns a [`TerrainTickReport`] describing how much work was done plus any
//! [`TerrainEvent`]s that other subsystems (entities, players) must react to.

use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockKind};
use crate::pos::BlockPos;
use crate::region::Region;
use crate::update::{BlockUpdate, UpdateKind};
use crate::world::World;
use crate::{fluid, growth, light, physics, redstone};

/// An event produced by terrain simulation that concerns other subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerrainEvent {
    /// A harvestable block was broken by a piston; an item entity representing
    /// it should be spawned.
    BlockHarvested {
        /// Where the block was.
        pos: BlockPos,
        /// What kind of block it was.
        kind: BlockKind,
    },
    /// A dispenser ejected an item; an item entity should be spawned.
    ItemDispensed {
        /// The dispenser position.
        pos: BlockPos,
    },
    /// A TNT block was ignited (removed from the terrain); a primed TNT entity
    /// should be spawned in its place.
    TntIgnited {
        /// Where the TNT block was.
        pos: BlockPos,
    },
}

/// Counters describing the terrain work done in one game tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TerrainTickReport {
    /// Neighbour-changed updates processed.
    pub neighbor_updates: u64,
    /// Scheduled updates processed.
    pub scheduled_updates: u64,
    /// Random ticks dispatched to plants.
    pub random_ticks: u64,
    /// Blocks newly placed this tick (old was air).
    pub blocks_added: u64,
    /// Blocks removed this tick (new is air).
    pub blocks_removed: u64,
    /// Blocks whose state changed in place.
    pub blocks_updated: u64,
    /// Positions visited by lighting recomputation.
    pub light_positions: u64,
    /// Fluid spread steps performed.
    pub fluid_spreads: u64,
    /// Redstone signal propagation steps performed.
    pub redstone_propagations: u64,
    /// Plant growth events.
    pub growths: u64,
    /// Raw world positions read by the rules.
    pub blocks_scanned: u64,
    /// Chunks generated during this tick (lazy generation near players).
    pub chunks_generated: u64,
    /// Whether the per-tick update budget was exhausted (cascade truncated).
    pub update_budget_exhausted: bool,
}

impl TerrainTickReport {
    /// Total number of block updates processed, regardless of origin.
    #[must_use]
    pub fn total_updates(&self) -> u64 {
        self.neighbor_updates + self.scheduled_updates + self.random_ticks
    }

    /// Abstract work units represented by this report, before any
    /// server-flavor or environment scaling.
    ///
    /// The weights reflect the relative cost of each operation class in real
    /// MLG servers: block updates and light floods are cheap individually,
    /// chunk generation is expensive, and raw scans are nearly free.
    #[must_use]
    pub fn base_work_units(&self) -> u64 {
        self.neighbor_updates * 12
            + self.scheduled_updates * 14
            + self.random_ticks * 4
            + self.blocks_added * 25
            + self.blocks_removed * 25
            + self.blocks_updated * 10
            + self.light_positions * 2
            + self.fluid_spreads * 18
            + self.redstone_propagations * 16
            + self.growths * 20
            + self.blocks_scanned
            + self.chunks_generated * 4_000
    }

    /// Merges another report into this one (summing every counter).
    pub fn merge(&mut self, other: &TerrainTickReport) {
        self.neighbor_updates += other.neighbor_updates;
        self.scheduled_updates += other.scheduled_updates;
        self.random_ticks += other.random_ticks;
        self.blocks_added += other.blocks_added;
        self.blocks_removed += other.blocks_removed;
        self.blocks_updated += other.blocks_updated;
        self.light_positions += other.light_positions;
        self.fluid_spreads += other.fluid_spreads;
        self.redstone_propagations += other.redstone_propagations;
        self.growths += other.growths;
        self.blocks_scanned += other.blocks_scanned;
        self.chunks_generated += other.chunks_generated;
        self.update_budget_exhausted |= other.update_budget_exhausted;
    }
}

/// Result of detonating an explosion in the world.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplosionOutcome {
    /// Number of blocks destroyed.
    pub blocks_destroyed: u64,
    /// Positions of TNT blocks ignited by the blast (chain reaction).
    pub tnt_ignited: Vec<BlockPos>,
    /// Number of positions examined by the blast.
    pub blocks_scanned: u64,
}

/// Destroys terrain in a spherical blast of the given `power` (radius in
/// blocks) centred at `center`.
///
/// TNT blocks caught in the blast are not destroyed but *ignited*: they are
/// removed from the terrain and reported in
/// [`ExplosionOutcome::tnt_ignited`] so the caller can spawn primed TNT
/// entities — this is the chain-reaction mechanism that makes the TNT
/// workload explode "a large section of TNT" from a single trigger.
pub fn explode(world: &mut World, center: BlockPos, power: u32) -> ExplosionOutcome {
    let mut outcome = ExplosionOutcome::default();
    let radius = power as i32;
    let region = Region::cube_around(center, radius);
    let radius_sq = u64::from(power) * u64::from(power);
    for pos in region.iter().collect::<Vec<_>>() {
        outcome.blocks_scanned += 1;
        if pos.distance_squared(center) > radius_sq {
            continue;
        }
        let block = world.block(pos);
        if block.is_air() || !block.kind().is_destructible() {
            continue;
        }
        if block.kind() == BlockKind::Tnt {
            world.set_block(pos, Block::AIR);
            outcome.tnt_ignited.push(pos);
        } else {
            world.set_block(pos, Block::AIR);
            outcome.blocks_destroyed += 1;
        }
    }
    outcome
}

/// Configuration and state of the terrain simulation stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TerrainSimulator {
    /// How many random ticks each loaded chunk receives per game tick.
    pub random_ticks_per_chunk: u32,
    /// Safety limit on the number of block updates processed in one tick.
    /// Real servers have no such limit, but an unbounded cascade would hang
    /// the simulation; the limit is high enough that only pathological
    /// workloads (lag machines on slow nodes) ever reach it.
    pub max_updates_per_tick: u32,
    /// Whether lighting is recomputed eagerly for every change (vanilla
    /// behaviour) or deferred/batched (PaperMC-style optimization).
    pub eager_lighting: bool,
}

impl Default for TerrainSimulator {
    fn default() -> Self {
        TerrainSimulator {
            random_ticks_per_chunk: 3,
            max_updates_per_tick: 200_000,
            eager_lighting: true,
        }
    }
}

impl TerrainSimulator {
    /// Creates a simulator with default (vanilla-like) settings.
    #[must_use]
    pub fn new() -> Self {
        TerrainSimulator::default()
    }

    /// Runs one tick of terrain simulation over the world.
    ///
    /// Returns the work report and the events other subsystems must handle.
    pub fn tick(&self, world: &mut World) -> (TerrainTickReport, Vec<TerrainEvent>) {
        let mut report = TerrainTickReport::default();
        let mut events = Vec::new();
        let changes_before = world.changes().len();
        let mut processed: u32 = 0;

        // 1. Scheduled updates that became due this tick.
        let current_tick = world.current_tick();
        let due = world.updates_mut().pop_due(current_tick);
        for update in due {
            report.scheduled_updates += 1;
            processed += 1;
            self.dispatch(world, update, &mut report, &mut events);
        }

        // 2. Immediate neighbour updates, including any produced while
        //    processing — this is the cascading simulation-rule loop.
        while let Some(update) = world.updates_mut().pop_immediate() {
            if processed >= self.max_updates_per_tick {
                report.update_budget_exhausted = true;
                break;
            }
            report.neighbor_updates += 1;
            processed += 1;
            self.dispatch(world, update, &mut report, &mut events);
        }

        // 3. Random ticks (plant growth).
        let random_positions = world.pick_random_tick_positions(self.random_ticks_per_chunk);
        for pos in random_positions {
            let kind = world.block_if_loaded(pos).kind();
            if growth::reacts_to_random_tick(kind) {
                report.random_ticks += 1;
                let outcome = growth::apply_random_tick(world, pos);
                report.blocks_scanned += u64::from(outcome.blocks_scanned);
                if outcome.grew {
                    report.growths += 1;
                }
            }
        }

        // 4. Classify the changes made this tick and relight around them.
        let new_changes: Vec<(BlockPos, bool, bool)> = world.changes()[changes_before..]
            .iter()
            .map(|c| (c.pos, c.old.is_air(), c.new.is_air()))
            .collect();
        for (pos, old_air, new_air) in new_changes {
            match (old_air, new_air) {
                (true, false) => report.blocks_added += 1,
                (false, true) => report.blocks_removed += 1,
                _ => report.blocks_updated += 1,
            }
            if self.eager_lighting {
                let lr = light::relight_after_change(world, pos);
                report.light_positions += u64::from(lr.total_positions());
            }
        }

        report.chunks_generated += u64::from(world.chunks_generated_this_tick());
        (report, events)
    }

    fn dispatch(
        &self,
        world: &mut World,
        update: BlockUpdate,
        report: &mut TerrainTickReport,
        events: &mut Vec<TerrainEvent>,
    ) {
        let kind = world.block(update.pos).kind();
        report.blocks_scanned += 1;
        if physics::reacts_to_updates(kind) {
            let out = physics::apply_gravity(world, update.pos);
            report.blocks_scanned += u64::from(out.blocks_scanned);
        } else if fluid::reacts_to_updates(kind) {
            let out = fluid::apply_fluid(world, update.pos);
            report.blocks_scanned += u64::from(out.blocks_scanned);
            report.fluid_spreads += u64::from(out.spread_to + out.solidified);
        } else if redstone::reacts_to_updates(kind) {
            let out = redstone::apply_redstone(world, update.pos, update.kind);
            report.blocks_scanned += u64::from(out.blocks_scanned);
            report.redstone_propagations += u64::from(out.propagations) + u64::from(out.changed);
            events.extend(out.events);
        } else if kind == BlockKind::Tnt && update.kind == UpdateKind::Scheduled {
            // A scheduled tick on a TNT block means it was fused for ignition.
            world.set_block(update.pos, Block::AIR);
            events.push(TerrainEvent::TntIgnited { pos: update.pos });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;
    use crate::pos::ChunkPos;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn idle_world_does_minimal_work() {
        let mut w = world();
        w.ensure_area(ChunkPos::new(0, 0), 1);
        w.advance_tick();
        let sim = TerrainSimulator::new();
        let (report, events) = sim.tick(&mut w);
        assert_eq!(report.neighbor_updates, 0);
        assert_eq!(report.scheduled_updates, 0);
        assert!(events.is_empty());
        // Random ticks still happen, but on a flat grass world nothing grows.
        assert_eq!(report.growths, 0);
    }

    #[test]
    fn placed_block_cascades_updates() {
        let mut w = world();
        let sim = TerrainSimulator::new();
        w.set_block(BlockPos::new(4, 80, 4), Block::simple(BlockKind::Sand));
        w.advance_tick();
        let (report, _) = sim.tick(&mut w);
        assert!(report.neighbor_updates >= 7);
        // The sand fell: one removal at the origin and one addition below.
        assert!(report.blocks_added >= 1);
        assert!(report.blocks_removed >= 1);
        assert_eq!(w.block(BlockPos::new(4, 61, 4)).kind(), BlockKind::Sand);
    }

    #[test]
    fn scheduled_tnt_ignition_produces_event() {
        let mut w = world();
        let sim = TerrainSimulator::new();
        let pos = BlockPos::new(2, 61, 2);
        w.set_block_silent(pos, Block::simple(BlockKind::Tnt));
        w.schedule_tick(pos, 1);
        w.advance_tick();
        let (_, events) = sim.tick(&mut w);
        assert_eq!(events, vec![TerrainEvent::TntIgnited { pos }]);
        assert_eq!(w.block(pos), Block::AIR);
    }

    #[test]
    fn clock_driven_work_alternates_between_ticks() {
        let mut w = world();
        let sim = TerrainSimulator::new();
        // A period-2 clock surrounded by dust: every other tick it toggles and
        // pushes updates into the dust, mirroring the lag-machine behaviour.
        let clock = BlockPos::new(4, 61, 4);
        w.set_block_silent(clock, Block::with_state(BlockKind::Comparator, 2));
        for n in clock.horizontal_neighbors() {
            w.set_block_silent(n, Block::simple(BlockKind::RedstoneDust));
        }
        w.schedule_tick(clock, 1);
        let mut per_tick_updates = Vec::new();
        for _ in 0..8 {
            w.advance_tick();
            let (report, _) = sim.tick(&mut w);
            per_tick_updates.push(report.total_updates());
        }
        let busy_ticks = per_tick_updates.iter().filter(|&&u| u > 0).count();
        let idle_ticks = per_tick_updates.iter().filter(|&&u| u == 0).count();
        assert!(
            busy_ticks >= 3,
            "clock should fire repeatedly: {per_tick_updates:?}"
        );
        assert!(
            idle_ticks >= 3,
            "clock should idle between firings: {per_tick_updates:?}"
        );
    }

    #[test]
    fn explosion_destroys_terrain_and_ignites_tnt() {
        let mut w = world();
        let center = BlockPos::new(8, 60, 8);
        let tnt_pos = BlockPos::new(10, 60, 8);
        w.set_block_silent(tnt_pos, Block::simple(BlockKind::Tnt));
        let outcome = explode(&mut w, center, 4);
        assert!(outcome.blocks_destroyed > 10);
        assert_eq!(outcome.tnt_ignited, vec![tnt_pos]);
        assert_eq!(w.block(center), Block::AIR);
        // Bedrock at y=0 is out of range, and would be indestructible anyway.
        assert_eq!(w.block(BlockPos::new(8, 0, 8)).kind(), BlockKind::Bedrock);
    }

    #[test]
    fn explosion_respects_indestructible_blocks() {
        let mut w = world();
        let center = BlockPos::new(8, 61, 8);
        let obsidian = BlockPos::new(9, 61, 8);
        w.set_block_silent(obsidian, Block::simple(BlockKind::Obsidian));
        explode(&mut w, center, 3);
        assert_eq!(w.block(obsidian).kind(), BlockKind::Obsidian);
    }

    #[test]
    fn update_budget_truncates_runaway_cascades() {
        let mut w = world();
        let sim = TerrainSimulator {
            max_updates_per_tick: 10,
            ..TerrainSimulator::default()
        };
        // Dump a large water cube in the air: the cascade exceeds the budget.
        let region = Region::new(BlockPos::new(0, 80, 0), BlockPos::new(5, 85, 5));
        for pos in region.iter().collect::<Vec<_>>() {
            w.set_block(pos, Block::simple(BlockKind::Water));
        }
        w.advance_tick();
        let (report, _) = sim.tick(&mut w);
        assert!(report.update_budget_exhausted);
        assert!(report.neighbor_updates <= 10);
    }

    #[test]
    fn report_merge_sums_counters() {
        let mut a = TerrainTickReport {
            neighbor_updates: 5,
            blocks_added: 2,
            ..TerrainTickReport::default()
        };
        let b = TerrainTickReport {
            neighbor_updates: 3,
            light_positions: 10,
            update_budget_exhausted: true,
            ..TerrainTickReport::default()
        };
        a.merge(&b);
        assert_eq!(a.neighbor_updates, 8);
        assert_eq!(a.blocks_added, 2);
        assert_eq!(a.light_positions, 10);
        assert!(a.update_budget_exhausted);
    }

    #[test]
    fn work_units_scale_with_activity() {
        let quiet = TerrainTickReport::default();
        let busy = TerrainTickReport {
            neighbor_updates: 100,
            blocks_added: 20,
            light_positions: 500,
            ..TerrainTickReport::default()
        };
        assert_eq!(quiet.base_work_units(), 0);
        assert!(busy.base_work_units() > 1000);
    }

    #[test]
    fn lighting_can_be_disabled() {
        let mut w = world();
        let sim = TerrainSimulator {
            eager_lighting: false,
            ..TerrainSimulator::default()
        };
        w.set_block(BlockPos::new(4, 61, 4), Block::simple(BlockKind::Stone));
        w.advance_tick();
        let (report, _) = sim.tick(&mut w);
        assert_eq!(report.light_positions, 0);
    }
}
