//! Redstone-like signal simulation.
//!
//! Simulated constructs — resource farms, item sorters and lag machines — are
//! built from signal components: dust wires, torches, repeaters, observers,
//! pistons and clocks. The paper highlights that the Lag workload "uses many
//! logic-gate constructs in a small area to cause a high volume of simulation
//! rule activations" and that its parts "are only simulated every other tick,
//! causing the game to alternate between extremely short and extremely long
//! ticks" — exactly the behaviour this module reproduces with its
//! clock components.

use crate::block::{Block, BlockKind};
use crate::pos::BlockPos;
use crate::shard::{BlockReader, TerrainView};
use crate::sim::TerrainEvent;
use crate::update::UpdateKind;

/// Bit in the state byte marking a component as powered / extended / lit.
pub const POWERED_BIT: u8 = 0b1_0000;

/// Default period, in ticks, of a clock component (comparator clock). The
/// every-other-tick behaviour of lag machines corresponds to period 2.
pub const DEFAULT_CLOCK_PERIOD: u8 = 2;

/// Result of processing one redstone update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedstoneOutcome {
    /// Whether the component changed state.
    pub changed: bool,
    /// Number of neighbouring positions read to evaluate the rule.
    pub blocks_scanned: u32,
    /// Number of signal propagation steps performed (dust recomputation).
    pub propagations: u32,
    /// Blocks harvested by piston extension, to be turned into item entities.
    pub events: Vec<TerrainEvent>,
}

/// Returns the strongest redstone power level feeding into `pos` from its
/// face-adjacent neighbours.
#[must_use]
pub fn incoming_power<W: BlockReader>(world: &mut W, pos: BlockPos) -> u8 {
    pos.neighbors()
        .iter()
        .map(|&n| world.block(n).power())
        .max()
        .unwrap_or(0)
}

/// Processes a block update for a redstone component at `pos`.
pub fn apply_redstone<W: TerrainView>(
    world: &mut W,
    pos: BlockPos,
    update_kind: UpdateKind,
) -> RedstoneOutcome {
    let block = world.block(pos);
    match block.kind() {
        BlockKind::RedstoneDust => update_dust(world, pos, block),
        BlockKind::RedstoneTorch => update_torch(world, pos, block),
        BlockKind::Repeater => update_repeater(world, pos, block, update_kind),
        BlockKind::Comparator => update_clock(world, pos, block, update_kind),
        BlockKind::Observer => update_observer(world, pos, block, update_kind),
        BlockKind::Piston | BlockKind::StickyPiston => update_piston(world, pos, block),
        BlockKind::Dispenser => update_dispenser(world, pos, block),
        _ => RedstoneOutcome::default(),
    }
}

fn update_dust<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    let mut strongest = 0u8;
    for n in pos.neighbors() {
        let nb = world.block(n);
        outcome.blocks_scanned += 1;
        let contribution = match nb.kind() {
            // Dust feeds adjacent dust at one level lower.
            BlockKind::RedstoneDust => nb.power().saturating_sub(1),
            _ => nb.power(),
        };
        strongest = strongest.max(contribution);
    }
    let new_level = strongest.min(15);
    if new_level != block.state() {
        world.set_block(pos, block.set_state(new_level));
        outcome.changed = true;
        outcome.propagations = 1;
    }
    outcome
}

fn update_torch<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    // A torch is an inverter: it is lit when it receives no power.
    let mut powered_input = false;
    for n in pos.neighbors() {
        let nb = world.block(n);
        outcome.blocks_scanned += 1;
        if nb.kind() != BlockKind::RedstoneTorch && nb.power() > 0 {
            powered_input = true;
        }
    }
    let currently_lit = block.state() != 0;
    let should_be_lit = !powered_input;
    if currently_lit != should_be_lit {
        // Torches switch with a one-tick delay, which is what makes
        // torch-dust loops oscillate (fast clocks).
        world.schedule_tick(pos, 1);
        world.set_block(pos, block.set_state(u8::from(should_be_lit)));
        outcome.changed = true;
    }
    outcome
}

fn update_repeater<W: TerrainView>(
    world: &mut W,
    pos: BlockPos,
    block: Block,
    update_kind: UpdateKind,
) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    let input = incoming_power(world, pos) > 0;
    outcome.blocks_scanned += 6;
    let output = block.state() & POWERED_BIT != 0;
    match update_kind {
        UpdateKind::Scheduled => {
            // Apply the pending transition.
            let new_state = if input {
                block.state() | POWERED_BIT
            } else {
                block.state() & !POWERED_BIT
            };
            if new_state != block.state() {
                world.set_block(pos, block.set_state(new_state));
                outcome.changed = true;
            }
        }
        _ => {
            if input != output {
                // Delay of 2 game ticks (1 redstone tick), like Minecraft's
                // default repeater setting.
                world.schedule_tick(pos, 2);
            }
        }
    }
    outcome
}

/// A comparator wired in a clock loop: it toggles its output every
/// `period` ticks as long as it keeps being scheduled. Workload builders
/// start the clock by scheduling one tick on it.
fn update_clock<W: TerrainView>(
    world: &mut W,
    pos: BlockPos,
    block: Block,
    update_kind: UpdateKind,
) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    let period = (block.state() & 0x0F).max(1);
    match update_kind {
        UpdateKind::Scheduled => {
            let toggled = block.state() ^ POWERED_BIT;
            world.set_block(pos, block.set_state(toggled));
            world.schedule_tick(pos, u64::from(period));
            outcome.changed = true;
        }
        UpdateKind::NeighborChanged | UpdateKind::Random => {
            // Neighbour changes do not affect a free-running clock.
        }
    }
    outcome
}

fn update_observer<W: TerrainView>(
    world: &mut W,
    pos: BlockPos,
    block: Block,
    update_kind: UpdateKind,
) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    let powered = block.state() & POWERED_BIT != 0;
    match update_kind {
        UpdateKind::NeighborChanged => {
            if !powered {
                // Emit a 2-tick pulse.
                world.set_block(pos, block.set_state(block.state() | POWERED_BIT));
                world.schedule_tick(pos, 2);
                outcome.changed = true;
            }
        }
        UpdateKind::Scheduled => {
            if powered {
                world.set_block(pos, block.set_state(block.state() & !POWERED_BIT));
                outcome.changed = true;
            }
        }
        UpdateKind::Random => {}
    }
    outcome
}

/// Kinds that a piston extension harvests into item entities.
fn is_harvestable(kind: BlockKind) -> bool {
    matches!(
        kind,
        BlockKind::Kelp
            | BlockKind::SugarCane
            | BlockKind::Wheat
            | BlockKind::Cobblestone
            | BlockKind::Stone
    )
}

fn update_piston<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    let powered = incoming_power(world, pos) > 0;
    outcome.blocks_scanned += 6;
    let extended = block.state() & POWERED_BIT != 0;
    if powered && !extended {
        world.set_block(pos, block.set_state(block.state() | POWERED_BIT));
        outcome.changed = true;
        // Extension breaks every adjacent harvestable block, turning it into
        // an item entity — the core mechanic of stone and kelp farms.
        for n in pos.neighbors() {
            let nb = world.block(n);
            outcome.blocks_scanned += 1;
            if is_harvestable(nb.kind()) {
                world.set_block(n, Block::AIR);
                outcome.events.push(TerrainEvent::BlockHarvested {
                    pos: n,
                    kind: nb.kind(),
                });
            }
        }
    } else if !powered && extended {
        world.set_block(pos, block.set_state(block.state() & !POWERED_BIT));
        outcome.changed = true;
    }
    outcome
}

fn update_dispenser<W: TerrainView>(world: &mut W, pos: BlockPos, block: Block) -> RedstoneOutcome {
    let mut outcome = RedstoneOutcome::default();
    let powered = incoming_power(world, pos) > 0;
    outcome.blocks_scanned += 6;
    let was_powered = block.state() & POWERED_BIT != 0;
    if powered && !was_powered {
        world.set_block(pos, block.set_state(block.state() | POWERED_BIT));
        outcome.changed = true;
        // Dispensers in farm constructs eject an item on each rising edge.
        outcome.events.push(TerrainEvent::ItemDispensed { pos });
    } else if !powered && was_powered {
        world.set_block(pos, block.set_state(block.state() & !POWERED_BIT));
        outcome.changed = true;
    }
    outcome
}

/// Block kinds that the redstone rule reacts to.
#[must_use]
pub fn reacts_to_updates(kind: BlockKind) -> bool {
    kind.is_redstone_component()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;
    use crate::world::World;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 7)
    }

    #[test]
    fn dust_takes_power_from_redstone_block() {
        let mut w = world();
        let dust = BlockPos::new(4, 61, 4);
        w.set_block_silent(dust, Block::simple(BlockKind::RedstoneDust));
        w.set_block_silent(
            dust.offset(1, 0, 0),
            Block::simple(BlockKind::RedstoneBlock),
        );
        let out = apply_redstone(&mut w, dust, UpdateKind::NeighborChanged);
        assert!(out.changed);
        assert_eq!(w.block(dust).state(), 15);
    }

    #[test]
    fn dust_power_decays_along_a_wire() {
        let mut w = world();
        let a = BlockPos::new(4, 61, 4);
        let b = a.offset(1, 0, 0);
        w.set_block_silent(a, Block::with_state(BlockKind::RedstoneDust, 15));
        w.set_block_silent(b, Block::simple(BlockKind::RedstoneDust));
        apply_redstone(&mut w, b, UpdateKind::NeighborChanged);
        assert_eq!(w.block(b).state(), 14);
    }

    #[test]
    fn unpowered_dust_turns_off() {
        let mut w = world();
        let dust = BlockPos::new(4, 61, 4);
        w.set_block_silent(dust, Block::with_state(BlockKind::RedstoneDust, 9));
        let out = apply_redstone(&mut w, dust, UpdateKind::NeighborChanged);
        assert!(out.changed);
        assert_eq!(w.block(dust).state(), 0);
    }

    #[test]
    fn torch_inverts_input() {
        let mut w = world();
        let torch = BlockPos::new(4, 61, 4);
        w.set_block_silent(torch, Block::with_state(BlockKind::RedstoneTorch, 1));
        // Power the torch: it should schedule itself to turn off.
        w.set_block_silent(
            torch.offset(1, 0, 0),
            Block::simple(BlockKind::RedstoneBlock),
        );
        let out = apply_redstone(&mut w, torch, UpdateKind::NeighborChanged);
        assert!(out.changed);
        assert_eq!(w.block(torch).state(), 0);
        assert!(w.updates().scheduled_len() > 0);
    }

    #[test]
    fn clock_toggles_and_reschedules() {
        let mut w = world();
        let clock = BlockPos::new(4, 61, 4);
        w.set_block_silent(
            clock,
            Block::with_state(BlockKind::Comparator, DEFAULT_CLOCK_PERIOD),
        );
        let before = w.block(clock).state() & POWERED_BIT;
        let out = apply_redstone(&mut w, clock, UpdateKind::Scheduled);
        assert!(out.changed);
        let after = w.block(clock).state() & POWERED_BIT;
        assert_ne!(before, after);
        assert_eq!(w.updates().scheduled_len(), 1);
        // Neighbour updates do not disturb the clock.
        let noop = apply_redstone(&mut w, clock, UpdateKind::NeighborChanged);
        assert!(!noop.changed);
    }

    #[test]
    fn observer_emits_a_pulse() {
        let mut w = world();
        let obs = BlockPos::new(4, 61, 4);
        w.set_block_silent(obs, Block::simple(BlockKind::Observer));
        let out = apply_redstone(&mut w, obs, UpdateKind::NeighborChanged);
        assert!(out.changed);
        assert_eq!(w.block(obs).power(), 15);
        // The scheduled follow-up clears the pulse.
        let out2 = apply_redstone(&mut w, obs, UpdateKind::Scheduled);
        assert!(out2.changed);
        assert_eq!(w.block(obs).power(), 0);
    }

    #[test]
    fn powered_piston_harvests_adjacent_kelp() {
        let mut w = world();
        let piston = BlockPos::new(4, 61, 4);
        let kelp = piston.offset(0, 0, 1);
        w.set_block_silent(piston, Block::simple(BlockKind::Piston));
        w.set_block_silent(kelp, Block::simple(BlockKind::Kelp));
        w.set_block_silent(
            piston.offset(1, 0, 0),
            Block::simple(BlockKind::RedstoneBlock),
        );
        let out = apply_redstone(&mut w, piston, UpdateKind::NeighborChanged);
        assert!(out.changed);
        assert_eq!(w.block(kelp), Block::AIR);
        assert_eq!(out.events.len(), 1);
        assert!(matches!(
            out.events[0],
            TerrainEvent::BlockHarvested {
                kind: BlockKind::Kelp,
                ..
            }
        ));
    }

    #[test]
    fn piston_retracts_when_unpowered() {
        let mut w = world();
        let piston = BlockPos::new(4, 61, 4);
        w.set_block_silent(piston, Block::with_state(BlockKind::Piston, POWERED_BIT));
        let out = apply_redstone(&mut w, piston, UpdateKind::NeighborChanged);
        assert!(out.changed);
        assert_eq!(w.block(piston).state() & POWERED_BIT, 0);
    }

    #[test]
    fn dispenser_fires_once_per_rising_edge() {
        let mut w = world();
        let disp = BlockPos::new(4, 61, 4);
        w.set_block_silent(disp, Block::simple(BlockKind::Dispenser));
        w.set_block_silent(
            disp.offset(1, 0, 0),
            Block::simple(BlockKind::RedstoneBlock),
        );
        let first = apply_redstone(&mut w, disp, UpdateKind::NeighborChanged);
        assert_eq!(first.events.len(), 1);
        // Still powered: no second ejection until the power drops.
        let second = apply_redstone(&mut w, disp, UpdateKind::NeighborChanged);
        assert!(second.events.is_empty());
    }

    #[test]
    fn repeater_applies_input_after_delay() {
        let mut w = world();
        let rep = BlockPos::new(4, 61, 4);
        w.set_block_silent(rep, Block::simple(BlockKind::Repeater));
        w.set_block_silent(rep.offset(1, 0, 0), Block::simple(BlockKind::RedstoneBlock));
        // Neighbour update only schedules the transition.
        let out = apply_redstone(&mut w, rep, UpdateKind::NeighborChanged);
        assert!(!out.changed);
        assert_eq!(w.block(rep).power(), 0);
        // Scheduled update applies it.
        let out2 = apply_redstone(&mut w, rep, UpdateKind::Scheduled);
        assert!(out2.changed);
        assert_eq!(w.block(rep).power(), 15);
    }

    #[test]
    fn non_redstone_blocks_are_ignored() {
        let mut w = world();
        let pos = BlockPos::new(4, 61, 4);
        w.set_block_silent(pos, Block::simple(BlockKind::Stone));
        let out = apply_redstone(&mut w, pos, UpdateKind::NeighborChanged);
        assert_eq!(out, RedstoneOutcome::default());
    }
}
