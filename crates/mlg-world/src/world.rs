//! The world: a lazily generated collection of chunks plus the global
//! block-update and change-tracking state shared by the terrain simulation.
//!
//! Chunk storage is physically partitioned by a [`ShardMap`] so the sharded
//! tick pipeline can hand each worker exclusive ownership of one shard's
//! chunks ([`World::take_shard_store`] / [`World::put_shard_store`])
//! without per-tick repartitioning. A freshly created world has a single
//! shard — the classic layout — and [`World::reshard`] repartitions it when
//! a server with a sharded tick pipeline adopts it. Chunk iteration is in
//! deterministic (shard-major, insertion) order, never hash order, so
//! everything derived from it is reproducible run-to-run.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::{Block, BlockKind};
use crate::chunk::{Chunk, CHUNK_SIZE, WORLD_HEIGHT};
use crate::generation::ChunkGenerator;
use crate::pos::{BlockPos, ChunkPos};
use crate::region::Region;
use crate::shard::ShardMap;
use crate::update::UpdateQueue;

/// A record of a single block change applied during the current tick.
///
/// The server drains these at the end of every tick and converts them into
/// block-change packets for connected clients (state-update dissemination in
/// the paper's operational model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockChange {
    /// Where the change happened.
    pub pos: BlockPos,
    /// The block before the change.
    pub old: Block,
    /// The block after the change.
    pub new: Block,
}

/// The chunks owned by one shard: dense insertion-ordered storage with a
/// hash *index* on the side for O(1) position lookup.
///
/// The chunks themselves live in a `Vec`, so **every** way of iterating a
/// store — shared or mutable — walks insertion order; the `HashMap` only
/// ever resolves a position to a slot and is never iterated. This is the
/// structure the `detlint` `no-hash-iteration` rule pushes the tick path
/// toward: hash lookup is fine, hash order is not.
#[derive(Debug, Default)]
pub struct ShardStore {
    chunks: Vec<Chunk>,
    index: HashMap<ChunkPos, usize>,
}

impl ShardStore {
    /// The chunk at `pos`, if loaded in this store.
    #[must_use]
    pub fn get(&self, pos: ChunkPos) -> Option<&Chunk> {
        self.index.get(&pos).map(|&slot| &self.chunks[slot])
    }

    /// Mutable access to the chunk at `pos`, if loaded in this store.
    pub fn get_mut(&mut self, pos: ChunkPos) -> Option<&mut Chunk> {
        self.index.get(&pos).map(|&slot| &mut self.chunks[slot])
    }

    /// Returns `true` when the chunk at `pos` is loaded in this store.
    #[must_use]
    pub fn contains(&self, pos: ChunkPos) -> bool {
        self.index.contains_key(&pos)
    }

    /// Inserts a freshly generated chunk (appending it to the iteration
    /// order). A chunk already present keeps its slot and is overwritten.
    pub fn insert(&mut self, chunk: Chunk) {
        match self.index.get(&chunk.pos()) {
            Some(&slot) => self.chunks[slot] = chunk,
            None => {
                self.index.insert(chunk.pos(), self.chunks.len());
                self.chunks.push(chunk);
            }
        }
    }

    /// Number of chunks in this store.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Returns `true` when the store holds no chunks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Iterates the chunks in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Chunk> {
        self.chunks.iter()
    }

    /// Iterates the chunks mutably, also in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Chunk> {
        self.chunks.iter_mut()
    }

    /// Iterates the chunk positions in insertion order.
    pub fn positions(&self) -> impl Iterator<Item = ChunkPos> + '_ {
        self.chunks.iter().map(Chunk::pos)
    }

    /// Consumes the store, yielding its chunks in insertion order.
    fn into_chunks(self) -> Vec<Chunk> {
        self.chunks
    }
}

/// An owned snapshot of every chunk in the world, taken by
/// [`World::snapshot_chunks`] and returned by [`World::restore_chunks`].
///
/// The snapshot is *moved*, not copied: it holds the world's actual
/// [`ShardStore`]s plus the shard map they are partitioned by, so the
/// read-only tick phases can share it across persistent pool workers
/// (wrapped in an `Arc` inside the phase context) while the world sits
/// empty. Reads behave exactly like [`World::block_if_loaded`] — unloaded
/// positions are air, nothing is generated — which is the contract the
/// frozen lighting and entity phases are specified against.
#[derive(Debug)]
pub struct WorldSnapshot {
    map: ShardMap,
    stores: Vec<ShardStore>,
}

impl WorldSnapshot {
    /// Returns the block at `pos`, reading unloaded positions as air.
    #[must_use]
    pub fn block_if_loaded(&self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        self.stores[self.map.shard_of_chunk(pos.chunk())]
            .get(pos.chunk())
            .map_or(Block::AIR, |c| c.block(lx, y, lz))
    }

    /// Returns the chunk at `pos`, if it was loaded when the snapshot was
    /// taken. Gives frozen readers heightmap access for the sky-light
    /// short-circuit.
    #[must_use]
    pub fn chunk_if_loaded(&self, pos: ChunkPos) -> Option<&Chunk> {
        self.stores[self.map.shard_of_chunk(pos)].get(pos)
    }
}

/// One memoized relight result: the flood+scan position count computed for
/// a position, tagged with the relight pass that computed it.
#[derive(Debug, Clone, Copy)]
struct RelightEntry {
    /// Relight pass (see [`RelightCache::pass`]) that computed this entry.
    tag: u64,
    /// `LightReport::total_positions()` of the computed relight.
    total: u32,
}

/// Memoized relight results keyed by `(position, frozen-mode)`.
///
/// Validity is checked structurally, not by expiry: an entry is reusable
/// iff, for every loaded chunk overlapping the position's 17×17 flood
/// window, (a) the chunk's light-stamp predates the entry's tag and (b) no
/// column in the window intersection is light-dirty (see
/// [`Chunk::light_dirty_in`]). State-only block changes never dirty the
/// mask, so redstone clocks keep their entries alive indefinitely — the
/// common case the cache exists for.
///
/// Entries are keyed by mode because frozen readers treat unloaded chunks
/// as air while the lazy path generates them: near the loaded-area edge the
/// two can legitimately count different flood sets.
///
/// The map is only ever probed (`get`/`insert`/`remove`) — never iterated —
/// so hash order cannot leak into modeled output (the detlint contract).
/// Bounded eviction order comes from the side `queue`, which records first
/// insertion order: a deterministic FIFO, independent of hash layout.
#[derive(Debug)]
struct RelightCache {
    entries: HashMap<(BlockPos, bool), RelightEntry>,
    /// Keys in first-insertion order; exactly the map's key set (an updated
    /// entry keeps its queue position, so `queue.len() == entries.len()`
    /// always holds and evicting the front is O(1)).
    queue: VecDeque<(BlockPos, bool)>,
    /// Monotone pass counter; incremented by [`World::begin_relight_pass`].
    pass: u64,
    /// Entry cap; reaching it evicts the oldest-inserted entry instead of
    /// (as before this was bounded) clearing the whole cache, so a working
    /// set near the cap keeps its hit rate. Configurable for tests only.
    cap: usize,
}

impl Default for RelightCache {
    fn default() -> Self {
        RelightCache {
            entries: HashMap::new(),
            queue: VecDeque::new(),
            pass: 0,
            cap: RELIGHT_CACHE_CAP,
        }
    }
}

/// Default eviction cap for the relight cache: bounds memory on worlds that
/// relight unbounded position sets.
const RELIGHT_CACHE_CAP: usize = 1 << 16;

/// The game world.
///
/// Owns every loaded chunk, the terrain generator used to lazily populate new
/// chunks, the block-update queues and the per-tick change log. All mutation
/// goes through [`World::set_block`] (or the silent variant used by workload
/// builders) so that neighbour updates and change tracking stay consistent.
pub struct World {
    shard_map: ShardMap,
    stores: Vec<ShardStore>,
    /// `Arc` rather than `Box` so tick-phase contexts can own a handle and
    /// run on the persistent worker pool (whose jobs cannot borrow the
    /// world); the world itself never shares mutable generator state — the
    /// [`ChunkGenerator`] trait is `&self` + `Send + Sync`.
    generator: Arc<dyn ChunkGenerator>,
    updates: UpdateQueue,
    changes: Vec<BlockChange>,
    chunks_generated_this_tick: u32,
    current_tick: u64,
    rng: StdRng,
    seed: u64,
    relight: RelightCache,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("generator", &self.generator.name())
            .field("shards", &self.shard_map.count())
            .field("loaded_chunks", &self.loaded_chunk_count())
            .field("current_tick", &self.current_tick)
            .field("pending_changes", &self.changes.len())
            .finish()
    }
}

impl World {
    /// Creates a new, empty world backed by the given generator.
    ///
    /// `seed` drives the random-tick lottery used for plant growth and other
    /// stochastic terrain behaviour; the generator carries its own seed.
    #[must_use]
    pub fn new(generator: Box<dyn ChunkGenerator>, seed: u64) -> Self {
        World {
            shard_map: ShardMap::new(1),
            stores: vec![ShardStore::default()],
            generator: Arc::from(generator),
            updates: UpdateQueue::new(),
            changes: Vec::new(),
            chunks_generated_this_tick: 0,
            current_tick: 0,
            rng: StdRng::seed_from_u64(seed),
            seed,
            relight: RelightCache::default(),
        }
    }

    /// Returns the world seed used for random ticks.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard map chunk storage is currently partitioned by.
    #[must_use]
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Repartitions chunk storage for `map`, preserving the global
    /// insertion order within each shard. Called once when a server with a
    /// sharded tick pipeline adopts a world; a no-op when the map is
    /// unchanged.
    pub fn reshard(&mut self, map: ShardMap) {
        if map == self.shard_map {
            return;
        }
        let mut stores: Vec<ShardStore> = Vec::new();
        stores.resize_with(map.count(), ShardStore::default);
        for store in self.stores.drain(..) {
            for chunk in store.into_chunks() {
                stores[map.shard_of_chunk(chunk.pos())].insert(chunk);
            }
        }
        self.shard_map = map;
        self.stores = stores;
    }

    /// Moves one shard's chunk store out of the world, leaving an empty
    /// store in its place. Used by the sharded tick pipeline to give a
    /// worker exclusive ownership of the shard's chunks; the caller must
    /// return the store with [`World::put_shard_store`] before the world is
    /// used as a whole again.
    pub fn take_shard_store(&mut self, shard: usize) -> ShardStore {
        std::mem::take(&mut self.stores[shard])
    }

    /// Returns a shard's chunk store taken with [`World::take_shard_store`].
    pub fn put_shard_store(&mut self, shard: usize, store: ShardStore) {
        self.stores[shard] = store;
    }

    /// Read access to one shard's chunk store.
    #[must_use]
    pub fn shard_store(&self, shard: usize) -> &ShardStore {
        &self.stores[shard]
    }

    /// Returns the current game tick number.
    #[must_use]
    pub fn current_tick(&self) -> u64 {
        self.current_tick
    }

    /// Advances the world's tick counter by one. Called by the game loop at
    /// the start of every tick.
    pub fn advance_tick(&mut self) {
        self.current_tick += 1;
        self.chunks_generated_this_tick = 0;
    }

    /// Number of chunks currently loaded in memory.
    #[must_use]
    pub fn loaded_chunk_count(&self) -> usize {
        self.stores.iter().map(ShardStore::len).sum()
    }

    /// Inclusive bounding box `(min, max)` of all loaded chunk positions,
    /// or `None` when no chunk is loaded. Used to size the root square of
    /// an adaptive shard partition around the world's actual footprint.
    #[must_use]
    pub fn chunk_bounds(&self) -> Option<(ChunkPos, ChunkPos)> {
        let mut positions = self.stores.iter().flat_map(ShardStore::positions);
        let first = positions.next()?;
        let (mut min, mut max) = (first, first);
        for pos in positions {
            min.x = min.x.min(pos.x);
            min.z = min.z.min(pos.z);
            max.x = max.x.max(pos.x);
            max.z = max.z.max(pos.z);
        }
        Some((min, max))
    }

    /// Number of chunks generated since the last [`World::advance_tick`] call.
    ///
    /// Chunk generation is one of the data- and compute-intensive terrain
    /// workloads (Section 2.2.2), so the per-tick count feeds into tick cost.
    #[must_use]
    pub fn chunks_generated_this_tick(&self) -> u32 {
        self.chunks_generated_this_tick
    }

    /// Adds externally performed chunk generations (from shard workers) to
    /// this tick's generation counter.
    pub fn note_chunks_generated(&mut self, generated: u32) {
        self.chunks_generated_this_tick += generated;
    }

    /// The terrain generator, shareable across shard workers.
    #[must_use]
    pub fn generator(&self) -> &dyn ChunkGenerator {
        self.generator.as_ref()
    }

    /// An owning handle to the terrain generator, for tick-phase contexts
    /// that must outlive any borrow of the world (persistent-pool jobs).
    #[must_use]
    pub fn generator_arc(&self) -> Arc<dyn ChunkGenerator> {
        Arc::clone(&self.generator)
    }

    /// Moves every shard's chunk store out of the world into an owned
    /// [`WorldSnapshot`], leaving empty stores behind.
    ///
    /// This is how the read-only tick phases (frozen relighting, the
    /// per-entity phase) share the world with the persistent worker pool
    /// without borrowing it: the snapshot owns the chunks for the duration
    /// of the phase and [`World::restore_chunks`] moves them back — two
    /// pointer-level moves, no chunk data is copied. While the snapshot is
    /// out, the world reads as empty; callers must not touch terrain until
    /// they restore it.
    #[must_use]
    pub fn snapshot_chunks(&mut self) -> WorldSnapshot {
        let mut empty: Vec<ShardStore> = Vec::new();
        empty.resize_with(self.stores.len(), ShardStore::default);
        WorldSnapshot {
            map: self.shard_map.clone(),
            stores: std::mem::replace(&mut self.stores, empty),
        }
    }

    /// Returns the chunk stores taken by [`World::snapshot_chunks`].
    ///
    /// # Panics
    ///
    /// Panics if the world was resharded while the snapshot was out (the
    /// snapshot's stores would no longer match the partition).
    pub fn restore_chunks(&mut self, snapshot: WorldSnapshot) {
        assert_eq!(
            snapshot.map, self.shard_map,
            "world was repartitioned while its chunk snapshot was out"
        );
        self.stores = snapshot.stores;
    }

    /// Ensures the chunk at `pos` is loaded, generating it if needed, and
    /// returns a reference to it.
    pub fn ensure_chunk(&mut self, pos: ChunkPos) -> &Chunk {
        let shard = self.shard_map.shard_of_chunk(pos);
        if !self.stores[shard].contains(pos) {
            let chunk = self.generator.generate(pos);
            self.stores[shard].insert(chunk);
            self.chunks_generated_this_tick += 1;
        }
        self.stores[shard].get(pos).expect("chunk just ensured")
    }

    fn ensure_chunk_mut(&mut self, pos: ChunkPos) -> &mut Chunk {
        let shard = self.shard_map.shard_of_chunk(pos);
        if !self.stores[shard].contains(pos) {
            let chunk = self.generator.generate(pos);
            self.stores[shard].insert(chunk);
            self.chunks_generated_this_tick += 1;
        }
        self.stores[shard].get_mut(pos).expect("chunk just ensured")
    }

    /// Ensures every chunk within `radius` (Chebyshev, in chunks) of `center`
    /// is loaded. Returns how many chunks were newly generated.
    pub fn ensure_area(&mut self, center: ChunkPos, radius: u32) -> usize {
        let mut generated = 0;
        for pos in center.within_radius(radius) {
            let shard = self.shard_map.shard_of_chunk(pos);
            if !self.stores[shard].contains(pos) {
                let chunk = self.generator.generate(pos);
                self.stores[shard].insert(chunk);
                self.chunks_generated_this_tick += 1;
                generated += 1;
            }
        }
        generated
    }

    /// Returns the chunk at `pos` if it is already loaded.
    #[must_use]
    pub fn chunk_if_loaded(&self, pos: ChunkPos) -> Option<&Chunk> {
        self.stores[self.shard_map.shard_of_chunk(pos)].get(pos)
    }

    /// Iterates over all loaded chunks in deterministic (shard-major,
    /// insertion) order.
    pub fn iter_chunks(&self) -> impl Iterator<Item = &Chunk> {
        self.stores.iter().flat_map(ShardStore::iter)
    }

    /// Iterates mutably over all loaded chunks (used by the server to clear
    /// dirty flags after broadcasting chunk data), in the same deterministic
    /// (shard-major, insertion) order as [`World::iter_chunks`].
    pub fn iter_chunks_mut(&mut self) -> impl Iterator<Item = &mut Chunk> {
        self.stores.iter_mut().flat_map(ShardStore::iter_mut)
    }

    /// Returns the block at `pos`, lazily generating the containing chunk.
    #[must_use]
    pub fn block(&mut self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let chunk_pos = pos.chunk();
        let (lx, y, lz) = pos.local();
        self.ensure_chunk(chunk_pos).block(lx, y, lz)
    }

    /// Returns the block at `pos` without generating missing chunks;
    /// unloaded positions read as air.
    #[must_use]
    pub fn block_if_loaded(&self, pos: BlockPos) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let (lx, y, lz) = pos.local();
        self.chunk_if_loaded(pos.chunk())
            .map_or(Block::AIR, |c| c.block(lx, y, lz))
    }

    /// Sets the block at `pos`, recording the change and enqueueing neighbour
    /// updates. Returns the previous block.
    ///
    /// Positions outside the vertical world bounds are ignored and read as
    /// air; no change is recorded for them.
    pub fn set_block(&mut self, pos: BlockPos, block: Block) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let old = self.place(pos, block);
        if old != block {
            self.changes.push(BlockChange {
                pos,
                old,
                new: block,
            });
            for n in pos.neighbors() {
                self.updates.push_neighbor(n);
            }
            self.updates.push_neighbor(pos);
        }
        old
    }

    /// Sets the block at `pos` without enqueueing neighbour updates or
    /// recording a change. Used by workload builders to construct worlds
    /// without triggering the simulation, mirroring how the paper's workload
    /// worlds are prepared offline and only start simulating when loaded.
    pub fn set_block_silent(&mut self, pos: BlockPos, block: Block) -> Block {
        self.place(pos, block)
    }

    fn place(&mut self, pos: BlockPos, block: Block) -> Block {
        if pos.y < 0 || pos.y >= WORLD_HEIGHT as i32 {
            return Block::AIR;
        }
        let chunk_pos = pos.chunk();
        let (lx, y, lz) = pos.local();
        self.ensure_chunk_mut(chunk_pos).set_block(lx, y, lz, block)
    }

    /// Fills an entire region with the given block (silently, without
    /// neighbour updates). Returns the number of blocks written.
    pub fn fill_region(&mut self, region: Region, block: Block) -> u64 {
        let mut written = 0;
        for pos in region.iter().collect::<Vec<_>>() {
            self.set_block_silent(pos, block);
            written += 1;
        }
        written
    }

    /// Returns the `y` of the highest non-air block in the column containing
    /// `(x, z)`, lazily generating the chunk.
    #[must_use]
    pub fn highest_block_y(&mut self, x: i32, z: i32) -> Option<i32> {
        let pos = BlockPos::new(x, 0, z);
        let chunk_pos = pos.chunk();
        let (lx, _, lz) = pos.local();
        self.ensure_chunk(chunk_pos).height_at(lx, lz)
    }

    /// Returns the `y` of the highest non-air block in column `(x, z)` from
    /// the chunk heightmap (`Some(-1)` for an all-air column), lazily
    /// generating the chunk — the same generation a block scan of that
    /// column would have triggered, so the modeled generation counter is
    /// unaffected by callers switching from scans to this lookup.
    #[must_use]
    pub fn column_top(&mut self, x: i32, z: i32) -> Option<i32> {
        Some(self.highest_block_y(x, z).unwrap_or(-1))
    }

    /// Compacts every loaded chunk's palette storage (drops dead palette
    /// entries, narrows packed index widths). Substrate-only: invoked from
    /// the server's simulated GC ticks and after bulk world building; cheap
    /// when chunks are already compact.
    pub fn compact_chunk_storage(&mut self) {
        for chunk in self.iter_chunks_mut() {
            chunk.compact_storage();
        }
    }

    /// Heap bytes currently owned by all loaded chunks' block stores.
    /// Compare against `loaded_chunk_count() * DENSE_BODY_BYTES` to measure
    /// the palette-compression win.
    #[must_use]
    pub fn chunk_storage_bytes(&self) -> usize {
        self.iter_chunks().map(Chunk::storage_bytes).sum()
    }

    /// Starts a relight pass and returns its pass number. Each pass must be
    /// closed with [`World::end_relight_pass`].
    pub(crate) fn begin_relight_pass(&mut self) -> u64 {
        self.relight.pass += 1;
        self.relight.pass
    }

    /// Looks up a memoized relight count for `pos` (in frozen or lazy
    /// mode), returning it only if no chunk overlapping the position's
    /// flood window was light-dirtied since the entry was computed.
    #[must_use]
    pub(crate) fn cached_relight(&self, pos: BlockPos, frozen: bool) -> Option<u32> {
        let entry = self.relight.entries.get(&(pos, frozen))?;
        self.relight_window_clean(pos, entry.tag)
            .then_some(entry.total)
    }

    /// `true` iff every loaded chunk overlapping the 17×17 flood window
    /// around `pos` is clean with respect to a cache entry tagged `tag`.
    fn relight_window_clean(&self, pos: BlockPos, tag: u64) -> bool {
        let r = crate::light::LIGHT_FLOOD_RADIUS as i32;
        let (x0, x1) = (pos.x - r, pos.x + r);
        let (z0, z1) = (pos.z - r, pos.z + r);
        let c0 = BlockPos::new(x0, 0, z0).chunk();
        let c1 = BlockPos::new(x1, 0, z1).chunk();
        for cx in c0.x..=c1.x {
            for cz in c0.z..=c1.z {
                let Some(chunk) = self.chunk_if_loaded(ChunkPos::new(cx, cz)) else {
                    continue;
                };
                if chunk.light_stamp() >= tag {
                    return false;
                }
                let origin = ChunkPos::new(cx, cz).origin_block();
                let lx0 = (x0 - origin.x).max(0) as usize;
                let lx1 = (x1 - origin.x).min(CHUNK_SIZE as i32 - 1) as usize;
                let lz0 = (z0 - origin.z).max(0) as usize;
                let lz1 = (z1 - origin.z).min(CHUNK_SIZE as i32 - 1) as usize;
                if chunk.light_dirty_in(lx0, lx1, lz0, lz1) {
                    return false;
                }
            }
        }
        true
    }

    /// Memoizes a relight count computed during the current pass.
    ///
    /// At the cap the oldest-inserted entry is evicted (deterministic FIFO
    /// by first insertion, via the cache's side queue — hash order is never
    /// consulted). Re-memoizing an existing key updates it in place and
    /// keeps its queue position, preserving the 1:1 map↔queue invariant.
    pub(crate) fn insert_relight(&mut self, pos: BlockPos, frozen: bool, total: u32) {
        let entry = RelightEntry {
            tag: self.relight.pass,
            total,
        };
        if let Some(slot) = self.relight.entries.get_mut(&(pos, frozen)) {
            *slot = entry;
            return;
        }
        if self.relight.entries.len() >= self.relight.cap {
            let oldest = self
                .relight
                .queue
                .pop_front()
                .expect("cache at cap implies a non-empty queue");
            self.relight.entries.remove(&oldest);
        }
        self.relight.queue.push_back((pos, frozen));
        self.relight.entries.insert((pos, frozen), entry);
    }

    /// Shrinks the relight-cache cap (tests only: exercises eviction
    /// without building a 2^16-entry working set).
    #[cfg(test)]
    pub(crate) fn set_relight_cache_cap(&mut self, cap: usize) {
        assert!(cap > 0, "a zero cap cannot hold the entry being inserted");
        self.relight.cap = cap;
        while self.relight.entries.len() > cap {
            let oldest = self
                .relight
                .queue
                .pop_front()
                .expect("map and queue stay 1:1");
            self.relight.entries.remove(&oldest);
        }
    }

    /// Closes a relight pass: folds every dirtied chunk's light-dirty mask
    /// into its stamp, invalidating all cache entries from earlier passes
    /// whose windows overlap those chunks while keeping this pass's fresh
    /// entries valid.
    pub(crate) fn end_relight_pass(&mut self) {
        let stamp = self.relight.pass.saturating_sub(1);
        for chunk in self.iter_chunks_mut() {
            chunk.fold_light_dirty(stamp);
        }
    }

    /// Enqueues an immediate neighbour update at `pos`.
    pub fn push_neighbor_update(&mut self, pos: BlockPos) {
        self.updates.push_neighbor(pos);
    }

    /// Schedules a block update for `pos` to run `delay_ticks` ticks from now.
    pub fn schedule_tick(&mut self, pos: BlockPos, delay_ticks: u64) {
        let due = self.current_tick + delay_ticks.max(1);
        self.updates.schedule_at(pos, due);
    }

    /// Schedules a block update for `pos` at the absolute game tick
    /// `due_tick` (used by the sharded pipeline to register shard workers'
    /// deferred schedules).
    pub fn schedule_tick_at(&mut self, pos: BlockPos, due_tick: u64) {
        self.updates.schedule_at(pos, due_tick);
    }

    /// Grants the terrain simulator access to the update queue.
    pub fn updates_mut(&mut self) -> &mut UpdateQueue {
        &mut self.updates
    }

    /// Read-only access to the update queue (for diagnostics and tests).
    #[must_use]
    pub fn updates(&self) -> &UpdateQueue {
        &self.updates
    }

    /// Drains and returns all block changes recorded since the last drain.
    pub fn drain_changes(&mut self) -> Vec<BlockChange> {
        std::mem::take(&mut self.changes)
    }

    /// Returns the block changes recorded and not yet drained, without
    /// consuming them. The terrain simulator uses this to classify the
    /// changes it caused (added vs removed vs updated) for the tick-time
    /// distribution metric.
    #[must_use]
    pub fn changes(&self) -> &[BlockChange] {
        &self.changes
    }

    /// Appends externally recorded block changes (from shard workers) to the
    /// change log, in the order given.
    pub fn append_changes(&mut self, changes: impl IntoIterator<Item = BlockChange>) {
        self.changes.extend(changes);
    }

    /// Number of block changes recorded and not yet drained.
    #[must_use]
    pub fn pending_change_count(&self) -> usize {
        self.changes.len()
    }

    /// Selects positions to receive a random tick this game tick.
    ///
    /// Mirrors Minecraft's behaviour: every loaded chunk submits
    /// `random_ticks_per_chunk` randomly chosen block positions per tick;
    /// plant growth and similar slow processes react to them.
    pub fn pick_random_tick_positions(&mut self, random_ticks_per_chunk: u32) -> Vec<BlockPos> {
        let mut chunk_positions: Vec<ChunkPos> = self
            .stores
            .iter()
            .flat_map(|store| store.positions())
            .collect();
        // Sort so the RNG draws are assigned to chunks in a stable order,
        // keeping the lottery deterministic for a given seed and chunk set —
        // independent of shard partitioning and load order.
        chunk_positions.sort();
        let mut picks = Vec::with_capacity(chunk_positions.len() * random_ticks_per_chunk as usize);
        for chunk_pos in chunk_positions {
            let origin = chunk_pos.origin_block();
            for _ in 0..random_ticks_per_chunk {
                let x = origin.x + self.rng.gen_range(0..CHUNK_SIZE as i32);
                let z = origin.z + self.rng.gen_range(0..CHUNK_SIZE as i32);
                let y = self.rng.gen_range(0..WORLD_HEIGHT as i32);
                picks.push(BlockPos::new(x, y, z));
            }
        }
        picks
    }

    /// Total number of non-air blocks across all loaded chunks.
    #[must_use]
    pub fn total_non_air_blocks(&self) -> u64 {
        self.iter_chunks()
            .map(|c| u64::from(c.non_air_blocks()))
            .sum()
    }

    /// Counts blocks of a given kind across all loaded chunks.
    ///
    /// This is a full scan; intended for workload validation and tests, not
    /// for per-tick use.
    #[must_use]
    pub fn count_kind(&self, kind: BlockKind) -> usize {
        self.iter_chunks().map(|c| c.count_kind(kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::FlatGenerator;

    fn world() -> World {
        World::new(Box::new(FlatGenerator::grassland()), 1234)
    }

    #[test]
    fn lazy_generation_on_block_access() {
        let mut w = world();
        assert_eq!(w.loaded_chunk_count(), 0);
        let b = w.block(BlockPos::new(100, 60, -200));
        assert_eq!(b.kind(), BlockKind::Grass);
        assert_eq!(w.loaded_chunk_count(), 1);
        assert_eq!(w.chunks_generated_this_tick(), 1);
    }

    #[test]
    fn set_block_records_change_and_neighbors() {
        let mut w = world();
        let pos = BlockPos::new(5, 70, 5);
        w.set_block(pos, Block::simple(BlockKind::Stone));
        assert_eq!(w.pending_change_count(), 1);
        // The block itself plus its six neighbours are queued for updates.
        assert_eq!(w.updates().immediate_len(), 7);
        let changes = w.drain_changes();
        assert_eq!(changes[0].pos, pos);
        assert_eq!(changes[0].old, Block::AIR);
        assert_eq!(changes[0].new.kind(), BlockKind::Stone);
        assert_eq!(w.pending_change_count(), 0);
    }

    #[test]
    fn silent_set_does_not_record() {
        let mut w = world();
        w.set_block_silent(BlockPos::new(1, 70, 1), Block::simple(BlockKind::Stone));
        assert_eq!(w.pending_change_count(), 0);
        assert!(w.updates().is_empty());
    }

    #[test]
    fn setting_identical_block_is_a_no_op() {
        let mut w = world();
        let pos = BlockPos::new(0, 60, 0);
        let existing = w.block(pos);
        w.drain_changes();
        w.set_block(pos, existing);
        assert_eq!(w.pending_change_count(), 0);
    }

    #[test]
    fn out_of_bounds_y_is_air() {
        let mut w = world();
        assert_eq!(w.block(BlockPos::new(0, -5, 0)), Block::AIR);
        assert_eq!(w.block(BlockPos::new(0, 500, 0)), Block::AIR);
        assert_eq!(
            w.set_block(BlockPos::new(0, 500, 0), Block::simple(BlockKind::Stone)),
            Block::AIR
        );
        assert_eq!(w.pending_change_count(), 0);
    }

    #[test]
    fn ensure_area_generates_square() {
        let mut w = world();
        let generated = w.ensure_area(ChunkPos::new(0, 0), 2);
        assert_eq!(generated, 25);
        assert_eq!(w.loaded_chunk_count(), 25);
        // Already loaded: generating again is a no-op.
        assert_eq!(w.ensure_area(ChunkPos::new(0, 0), 2), 0);
    }

    #[test]
    fn advance_tick_resets_generation_counter() {
        let mut w = world();
        w.ensure_area(ChunkPos::new(0, 0), 1);
        assert!(w.chunks_generated_this_tick() > 0);
        w.advance_tick();
        assert_eq!(w.chunks_generated_this_tick(), 0);
        assert_eq!(w.current_tick(), 1);
    }

    #[test]
    fn fill_region_writes_volume() {
        let mut w = world();
        let region = Region::new(BlockPos::new(0, 70, 0), BlockPos::new(3, 72, 3));
        let written = w.fill_region(region, Block::simple(BlockKind::Tnt));
        assert_eq!(written, region.volume());
        assert_eq!(w.count_kind(BlockKind::Tnt), region.volume() as usize);
    }

    #[test]
    fn highest_block_matches_flat_surface() {
        let mut w = world();
        assert_eq!(w.highest_block_y(8, 8), Some(60));
        w.set_block(BlockPos::new(8, 90, 8), Block::simple(BlockKind::Stone));
        assert_eq!(w.highest_block_y(8, 8), Some(90));
    }

    #[test]
    fn random_tick_positions_are_deterministic_for_seed() {
        let mut w1 = World::new(Box::new(FlatGenerator::grassland()), 99);
        let mut w2 = World::new(Box::new(FlatGenerator::grassland()), 99);
        w1.ensure_area(ChunkPos::new(0, 0), 1);
        w2.ensure_area(ChunkPos::new(0, 0), 1);
        let p1 = w1.pick_random_tick_positions(3);
        let p2 = w2.pick_random_tick_positions(3);
        assert_eq!(p1.len(), 9 * 3);
        // Same seed and same chunk set: the picks must match exactly (the
        // lottery iterates chunks in sorted order).
        assert_eq!(p1, p2);
    }

    #[test]
    fn random_tick_positions_are_shard_partition_independent() {
        let mut flat = World::new(Box::new(FlatGenerator::grassland()), 4242);
        let mut sharded = World::new(Box::new(FlatGenerator::grassland()), 4242);
        sharded.reshard(ShardMap::new(4));
        flat.ensure_area(ChunkPos::new(0, 0), 3);
        sharded.ensure_area(ChunkPos::new(0, 0), 3);
        assert_eq!(
            flat.pick_random_tick_positions(3),
            sharded.pick_random_tick_positions(3)
        );
    }

    #[test]
    fn scheduled_tick_becomes_due() {
        let mut w = world();
        let pos = BlockPos::new(1, 61, 1);
        w.schedule_tick(pos, 2);
        assert!(w.updates_mut().pop_due(1).is_empty());
        w.advance_tick();
        w.advance_tick();
        let tick = w.current_tick();
        let due = w.updates_mut().pop_due(tick);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].pos, pos);
    }

    #[test]
    fn reshard_preserves_content_and_lookup() {
        let mut w = world();
        w.ensure_area(ChunkPos::new(0, 0), 3);
        let pos = BlockPos::new(37, 70, -12);
        w.set_block(pos, Block::simple(BlockKind::Tnt));
        let chunks_before = w.loaded_chunk_count();
        let non_air_before = w.total_non_air_blocks();
        w.reshard(ShardMap::new(4));
        assert_eq!(w.loaded_chunk_count(), chunks_before);
        assert_eq!(w.total_non_air_blocks(), non_air_before);
        assert_eq!(w.block(pos).kind(), BlockKind::Tnt);
        assert_eq!(w.shard_map().count(), 4);
        // Every chunk landed in the store its shard map entry names.
        for shard in 0..4 {
            for chunk_pos in w.shard_store(shard).positions().collect::<Vec<_>>() {
                assert_eq!(w.shard_map().shard_of_chunk(chunk_pos), shard);
            }
        }
    }

    #[test]
    fn take_and_put_shard_store_round_trips() {
        let mut w = world();
        w.ensure_area(ChunkPos::new(0, 0), 2);
        w.reshard(ShardMap::new(2));
        let before = w.loaded_chunk_count();
        let store = w.take_shard_store(1);
        assert!(w.loaded_chunk_count() < before || store.is_empty());
        w.put_shard_store(1, store);
        assert_eq!(w.loaded_chunk_count(), before);
    }

    /// Spreads cache keys across far-apart, unloaded chunks so the
    /// structural validity check (which only consults loaded chunks) is
    /// trivially clean and tests observe pure eviction behaviour.
    fn far_pos(i: i32) -> BlockPos {
        BlockPos::new(i * 1000, 60, -i * 1000)
    }

    #[test]
    fn relight_cache_hit_rate_survives_cap_pressure() {
        let mut w = world();
        w.set_relight_cache_cap(8);
        w.begin_relight_pass();
        for i in 0..8 {
            w.insert_relight(far_pos(i), true, i as u32);
        }
        for i in 0..8 {
            assert_eq!(w.cached_relight(far_pos(i), true), Some(i as u32));
        }
        // Crossing the cap evicts exactly the oldest entry; the wholesale
        // clear this replaces would have dropped all eight.
        w.insert_relight(far_pos(8), true, 8);
        assert_eq!(w.cached_relight(far_pos(0), true), None, "oldest evicted");
        for i in 1..=8 {
            assert_eq!(
                w.cached_relight(far_pos(i), true),
                Some(i as u32),
                "entry {i} lost under cap pressure"
            );
        }
        w.end_relight_pass();
    }

    #[test]
    fn relight_cache_update_keeps_first_insertion_order() {
        let mut w = world();
        w.set_relight_cache_cap(2);
        w.begin_relight_pass();
        w.insert_relight(far_pos(1), false, 10);
        w.insert_relight(far_pos(2), false, 20);
        // Re-memoizing an existing key updates in place (no queue growth,
        // no duplicate): FIFO order stays first-insertion, so the next
        // insert at cap still evicts key 1.
        w.insert_relight(far_pos(1), false, 11);
        assert_eq!(w.cached_relight(far_pos(1), false), Some(11));
        w.insert_relight(far_pos(3), false, 30);
        assert_eq!(w.cached_relight(far_pos(1), false), None);
        assert_eq!(w.cached_relight(far_pos(2), false), Some(20));
        assert_eq!(w.cached_relight(far_pos(3), false), Some(30));
        // The 1:1 map<->queue invariant holds through further churn: each
        // insert evicts exactly one entry, never more.
        w.insert_relight(far_pos(4), false, 40);
        assert_eq!(w.cached_relight(far_pos(2), false), None);
        assert_eq!(w.cached_relight(far_pos(3), false), Some(30));
        assert_eq!(w.cached_relight(far_pos(4), false), Some(40));
        w.end_relight_pass();
    }

    #[test]
    fn relight_cache_frozen_and_lazy_entries_are_distinct() {
        let mut w = world();
        w.begin_relight_pass();
        w.insert_relight(far_pos(1), true, 7);
        w.insert_relight(far_pos(1), false, 9);
        assert_eq!(w.cached_relight(far_pos(1), true), Some(7));
        assert_eq!(w.cached_relight(far_pos(1), false), Some(9));
        w.end_relight_pass();
    }

    #[test]
    fn relight_cache_misses_after_overlapping_generation() {
        let mut w = world();
        let pos = BlockPos::new(8, 60, 8);
        w.begin_relight_pass();
        w.insert_relight(pos, true, 42);
        assert_eq!(w.cached_relight(pos, true), Some(42));
        // Generating the chunk under the cached window leaves its freshly
        // filled columns light-dirty, so the entry must structurally miss
        // rather than serve a count computed against an air window.
        w.ensure_chunk(pos.chunk());
        assert_eq!(
            w.cached_relight(pos, true),
            None,
            "stale entry survived generation under its window"
        );
        w.end_relight_pass();
    }

    #[test]
    fn chunk_iteration_is_insertion_ordered() {
        let mut w = world();
        w.ensure_chunk(ChunkPos::new(2, 2));
        w.ensure_chunk(ChunkPos::new(-1, 0));
        w.ensure_chunk(ChunkPos::new(0, 5));
        let order: Vec<ChunkPos> = w.iter_chunks().map(Chunk::pos).collect();
        assert_eq!(
            order,
            vec![
                ChunkPos::new(2, 2),
                ChunkPos::new(-1, 0),
                ChunkPos::new(0, 5)
            ]
        );
    }
}
