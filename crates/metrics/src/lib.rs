//! Performance-variability metrics for Minecraft-like games.
//!
//! This crate implements the metric layer of the Meterstick benchmark
//! (Sections 3.5 and 4 of the paper):
//!
//! * the novel **Instability Ratio (ISR)** — a normalized sum of
//!   cycle-to-cycle jitter over a trace of game ticks ([`isr`]), together
//!   with the closed-form analytical model used in the paper's Figure 6;
//! * **tick traces** and their summary statistics ([`trace`], [`stats`]);
//! * the **comparison metrics** of Table 6 — standard deviation, Allan
//!   variance and RFC 3550 smoothed jitter ([`compare`]);
//! * **game response time** with the Noticeable-Delay and Unplayable-Game
//!   thresholds ([`response`]);
//! * the **tick-time distribution** across workload operations
//!   ([`distribution`]), used by Figure 11;
//! * **windowed streaming aggregation** for long-horizon campaigns
//!   ([`windowed`]): per-window mean/CoV/percentiles plus horizon-wide
//!   cumulative aggregates, memory flat with horizon.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod distribution;
pub mod isr;
pub mod response;
pub mod stats;
pub mod trace;
pub mod windowed;

pub use distribution::{TickDistribution, TickOperation};
pub use isr::{analytical_isr, instability_ratio, IsrParams};
pub use response::{ResponseTimeSummary, NOTICEABLE_DELAY_MS, UNPLAYABLE_MS};
pub use stats::{BoxplotSummary, Percentiles};
pub use trace::{TickRecord, TickTrace};
pub use windowed::{WindowSummary, WindowedAggregator, WindowedReport};

/// The intended tick period of an MLG running at 20 Hz, in milliseconds.
pub const TICK_BUDGET_MS: f64 = 50.0;
