//! Alternative variability metrics compared against ISR in Table 6.
//!
//! The paper positions ISR against three existing measures:
//!
//! | metric             | order dependent | irregular sampling | normalized |
//! |---------------------|-----------------|--------------------|------------|
//! | standard deviation  | no              | no                 | no         |
//! | Allan variance      | yes             | no                 | no         |
//! | RFC 3550 jitter     | yes             | yes                | no         |
//! | ISR                 | yes             | yes                | yes        |
//!
//! Implementing them here lets the benchmark report all four side by side and
//! lets tests verify the properties the table claims.

use serde::{Deserialize, Serialize};

pub use crate::stats::std_dev;

/// Computes the (non-overlapping, two-sample) Allan variance of a series of
/// tick durations.
///
/// Allan variance is defined as `1/2 · ⟨(ȳ_{k+1} − ȳ_k)²⟩` over consecutive
/// averaging windows; with a window of one sample it reduces to half the mean
/// squared successive difference. It is order dependent but assumes a
/// constant sampling period, which tick traces do not have when the game is
/// overloaded — the limitation Table 6 notes.
#[must_use]
pub fn allan_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let sum_sq: f64 = values
        .windows(2)
        .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
        .sum();
    sum_sq / (2.0 * (values.len() - 1) as f64)
}

/// RFC 3550 (RTP) smoothed interarrival jitter.
///
/// `J_i = J_{i−1} + (|D_{i−1,i}| − J_{i−1}) / 16`, where `D` is the
/// difference between consecutive transit (here: tick) durations. Returns the
/// final smoothed value, which is how it is typically reported.
#[must_use]
pub fn rfc3550_jitter(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mut jitter = 0.0;
    for pair in values.windows(2) {
        let d = (pair[1] - pair[0]).abs();
        jitter += (d - jitter) / 16.0;
    }
    jitter
}

/// Properties of a variability metric, as listed in Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricProperties {
    /// Name of the metric.
    pub name: &'static str,
    /// Whether reordering the samples can change the value.
    pub order_dependent: bool,
    /// Whether the metric remains meaningful with irregular sampling periods.
    pub irregular_sampling: bool,
    /// Whether the value is normalized to a bounded range.
    pub normalized: bool,
}

/// Returns the comparison rows of Table 6.
#[must_use]
pub fn table6() -> [MetricProperties; 4] {
    [
        MetricProperties {
            name: "standard deviation",
            order_dependent: false,
            irregular_sampling: false,
            normalized: false,
        },
        MetricProperties {
            name: "Allan variance",
            order_dependent: true,
            irregular_sampling: false,
            normalized: false,
        },
        MetricProperties {
            name: "jitter (RFC 3550)",
            order_dependent: true,
            irregular_sampling: true,
            normalized: false,
        },
        MetricProperties {
            name: "ISR",
            order_dependent: true,
            irregular_sampling: true,
            normalized: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isr::{instability_ratio, IsrParams};

    fn clustered() -> Vec<f64> {
        let mut v = vec![50.0; 100];
        for item in v.iter_mut().take(5) {
            *item = 1000.0;
        }
        v
    }

    fn spread() -> Vec<f64> {
        let mut v = vec![50.0; 100];
        for k in 0..5 {
            v[k * 20 + 10] = 1000.0;
        }
        v
    }

    #[test]
    fn std_dev_is_order_independent() {
        assert!((std_dev(&clustered()) - std_dev(&spread())).abs() < 1e-9);
    }

    #[test]
    fn allan_variance_is_order_dependent() {
        assert!(allan_variance(&spread()) > allan_variance(&clustered()) * 2.0);
    }

    #[test]
    fn jitter_is_order_dependent() {
        assert!(rfc3550_jitter(&spread()) > rfc3550_jitter(&clustered()));
    }

    #[test]
    fn isr_is_order_dependent_and_normalized() {
        let params = IsrParams {
            budget_ms: 50.0,
            expected_ticks: Some(100),
        };
        let c = instability_ratio(&clustered(), params);
        let s = instability_ratio(&spread(), params);
        assert!(s > c);
        assert!((0.0..=1.0).contains(&c));
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn unnormalized_metrics_grow_without_bound() {
        // Scaling the trace scales std-dev and jitter, but ISR saturates at 1.
        let base = spread();
        let scaled: Vec<f64> = base.iter().map(|v| v * 100.0).collect();
        assert!(std_dev(&scaled) > std_dev(&base) * 50.0);
        assert!(rfc3550_jitter(&scaled) > rfc3550_jitter(&base) * 50.0);
        let params = IsrParams {
            budget_ms: 50.0,
            expected_ticks: Some(100),
        };
        assert!(instability_ratio(&scaled, params) <= 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(allan_variance(&[]), 0.0);
        assert_eq!(allan_variance(&[5.0]), 0.0);
        assert_eq!(rfc3550_jitter(&[]), 0.0);
        assert_eq!(rfc3550_jitter(&[5.0]), 0.0);
        assert_eq!(allan_variance(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(rfc3550_jitter(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn table6_matches_the_paper() {
        let rows = table6();
        assert_eq!(rows.len(), 4);
        let isr = rows.iter().find(|r| r.name == "ISR").unwrap();
        assert!(isr.order_dependent && isr.irregular_sampling && isr.normalized);
        let sd = rows
            .iter()
            .find(|r| r.name == "standard deviation")
            .unwrap();
        assert!(!sd.order_dependent && !sd.normalized);
        // Only ISR is normalized.
        assert_eq!(rows.iter().filter(|r| r.normalized).count(), 1);
    }
}
