//! The Instability Ratio (ISR) metric.
//!
//! Section 4 of the paper defines ISR as the normalized sum of cycle-to-cycle
//! jitter over a trace of game ticks:
//!
//! ```text
//!         Σ_{i=1}^{Na} | max(b, t_i) − max(b, t_{i−1}) |
//! ISR = ─────────────────────────────────────────────────
//!                        Ne × 2b
//! ```
//!
//! where `t_i` is the duration of the `i`-th tick, `b` the intended tick
//! period (50 ms), `Na` the actual number of ticks in the trace and `Ne` the
//! number of ticks the trace *should* contain had every tick met its budget.
//! ISR ranges from 0 (perfectly stable) to 1 (tick periods alternating between
//! the budget and extremely large values).

use serde::{Deserialize, Serialize};

/// Parameters of the ISR computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsrParams {
    /// The intended tick period `b`, in milliseconds (50 ms for MLGs).
    pub budget_ms: f64,
    /// The expected number of ticks `Ne` for the trace duration. When `None`,
    /// it is derived from the trace itself: `ceil(total_period / b)`, i.e. the
    /// number of budget-length ticks that would have fitted in the same span.
    pub expected_ticks: Option<u64>,
}

impl Default for IsrParams {
    fn default() -> Self {
        IsrParams {
            budget_ms: 50.0,
            expected_ticks: None,
        }
    }
}

/// Computes the Instability Ratio of a trace of tick durations (milliseconds).
///
/// Returns 0 for traces with fewer than two ticks (no consecutive pair
/// exists, hence no jitter).
///
/// # Panics
///
/// Panics if `params.budget_ms` is not strictly positive.
#[must_use]
pub fn instability_ratio(tick_durations_ms: &[f64], params: IsrParams) -> f64 {
    let b = params.budget_ms;
    assert!(b > 0.0, "tick budget must be positive");
    if tick_durations_ms.len() < 2 {
        return 0.0;
    }
    let periods: Vec<f64> = tick_durations_ms.iter().map(|&t| t.max(b)).collect();
    let jitter_sum: f64 = periods.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    let expected = params.expected_ticks.unwrap_or_else(|| {
        let total: f64 = periods.iter().sum();
        (total / b).ceil() as u64
    });
    if expected == 0 {
        return 0.0;
    }
    (jitter_sum / (expected as f64 * 2.0 * b)).clamp(0.0, 1.0)
}

/// The closed-form ISR model of Section 4.2: a trace where one tick in every
/// `lambda` has duration `s·b` and the others have duration `b` yields
/// `ISR = (s − 1) / (s + λ − 1)`.
///
/// # Panics
///
/// Panics if `lambda < 1.0` or `s < 1.0`.
#[must_use]
pub fn analytical_isr(s: f64, lambda: f64) -> f64 {
    assert!(s >= 1.0, "outlier scale s must be at least 1");
    assert!(lambda >= 1.0, "outlier period lambda must be at least 1");
    (s - 1.0) / (s + lambda - 1.0)
}

/// Builds a synthetic trace with `total_ticks` ticks where every `lambda`-th
/// tick has duration `s * budget` and all others exactly `budget`. Used by the
/// Figure 6 analysis and by tests validating the analytical model.
#[must_use]
pub fn synthetic_outlier_trace(
    total_ticks: usize,
    lambda: usize,
    s: f64,
    budget_ms: f64,
) -> Vec<f64> {
    (0..total_ticks)
        .map(|i| {
            if lambda > 0 && (i + 1) % lambda == 0 {
                budget_ms * s
            } else {
                budget_ms
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: f64 = 50.0;

    fn isr(trace: &[f64]) -> f64 {
        instability_ratio(trace, IsrParams::default())
    }

    #[test]
    fn constant_trace_has_zero_isr() {
        let trace = vec![50.0; 1000];
        assert_eq!(isr(&trace), 0.0);
        // Ticks faster than the budget still run at the budget period.
        let fast = vec![3.0; 1000];
        assert_eq!(isr(&fast), 0.0);
    }

    #[test]
    fn short_traces_have_zero_isr() {
        assert_eq!(isr(&[]), 0.0);
        assert_eq!(isr(&[400.0]), 0.0);
    }

    #[test]
    fn alternating_extreme_trace_approaches_one() {
        // Alternate between the budget and a huge value: ISR → 1.
        let mut trace = Vec::new();
        for i in 0..1000 {
            trace.push(if i % 2 == 0 { 50.0 } else { 50_000.0 });
        }
        let value = instability_ratio(
            &trace,
            IsrParams {
                budget_ms: B,
                expected_ticks: Some(trace.len() as u64),
            },
        );
        assert!(value > 0.95, "alternating extreme trace gave {value}");
        assert!(value <= 1.0);
    }

    #[test]
    fn isr_matches_hand_computed_fixtures_exactly() {
        // Trace [50, 50, 150, 50]: periods unchanged (all ≥ b). Jitter sum
        // = |50−50| + |150−50| + |50−150| = 200. Derived Ne =
        // ceil(300/50) = 6 ⇒ ISR = 200/(6·2·50) = 1/3 exactly.
        let trace = [50.0, 50.0, 150.0, 50.0];
        let derived = instability_ratio(&trace, IsrParams::default());
        assert!((derived - 1.0 / 3.0).abs() < 1e-12, "got {derived}");
        // Same trace with Ne pinned to the actual tick count (Na = Ne = 4):
        // ISR = 200/(4·2·50) = 0.5 exactly.
        let pinned = instability_ratio(
            &trace,
            IsrParams {
                budget_ms: B,
                expected_ticks: Some(4),
            },
        );
        assert!((pinned - 0.5).abs() < 1e-12, "got {pinned}");
        // Sub-budget ticks clamp to the budget period before differencing:
        // [10, 49, 50] has zero jitter.
        assert_eq!(
            instability_ratio(&[10.0, 49.0, 50.0], IsrParams::default()),
            0.0
        );
        // One step up then flat: jitter only at the step. [50, 100, 100]:
        // jitter 50, Ne = ceil(250/50) = 5 ⇒ ISR = 50/500 = 0.1 exactly.
        let step = instability_ratio(&[50.0, 100.0, 100.0], IsrParams::default());
        assert!((step - 0.1).abs() < 1e-12, "got {step}");
    }

    #[test]
    fn matches_analytical_model() {
        // ISR = (s-1)/(s+λ-1). The analytical model derives Ne from the trace
        // duration (overloaded ticks push Na below Ne); passing
        // `expected_ticks: None` does the same, so the trace-based value
        // converges to the model as the trace grows.
        for &(s, lambda) in &[(2.0, 10usize), (10.0, 25), (20.0, 50), (10.0, 2)] {
            let trace = synthetic_outlier_trace(20_000, lambda, s, B);
            let measured = instability_ratio(
                &trace,
                IsrParams {
                    budget_ms: B,
                    expected_ticks: None,
                },
            );
            let expected = analytical_isr(s, lambda as f64);
            assert!(
                (measured - expected).abs() < 0.02,
                "s={s} λ={lambda}: measured {measured}, analytical {expected}"
            );
        }
    }

    #[test]
    fn paper_example_s10_lambda25_is_about_0_26() {
        // Section 4.2: "a tick exceeding b by a factor 10 every 25 ticks
        // results in an ISR value of 0.26".
        let value = analytical_isr(10.0, 25.0);
        assert!((value - 0.2647).abs() < 0.001);
    }

    #[test]
    fn figure6b_low_vs_high_isr_traces() {
        // 1000 ticks, five outliers with scale 20. Clustered outliers (Low
        // ISR) vs evenly spread outliers (High ISR): same distribution, an
        // order of magnitude apart in ISR.
        let mut low = vec![B; 1000];
        for item in low.iter_mut().take(5) {
            *item = B * 20.0;
        }
        let mut high = vec![B; 1000];
        for k in 0..5 {
            high[k * 200 + 100] = B * 20.0;
        }
        let params = IsrParams {
            budget_ms: B,
            expected_ticks: Some(1000),
        };
        let low_isr = instability_ratio(&low, params);
        let high_isr = instability_ratio(&high, params);
        // The paper reports 0.009 vs 0.15; with the literal Equation 1 the
        // clustered trace gives ~0.0095 and the spread trace ~0.095 — an
        // order of magnitude apart, which is the property the figure makes.
        assert!(high_isr > low_isr * 5.0, "high {high_isr} vs low {low_isr}");
        assert!(
            (low_isr - 0.0095).abs() < 0.005,
            "low ISR ≈ 0.009, got {low_isr}"
        );
        assert!(
            (high_isr - 0.095).abs() < 0.03,
            "high ISR ≈ 0.095, got {high_isr}"
        );
    }

    #[test]
    fn isr_increases_with_outlier_size_and_frequency() {
        let small = analytical_isr(2.0, 25.0);
        let big = analytical_isr(20.0, 25.0);
        assert!(big > small);
        let rare = analytical_isr(10.0, 100.0);
        let frequent = analytical_isr(10.0, 5.0);
        assert!(frequent > rare);
    }

    #[test]
    fn order_dependence_distinguishes_identical_distributions() {
        // The defining property vs standard deviation: reordering changes ISR.
        let mut clustered = vec![B; 100];
        for item in clustered.iter_mut().take(10) {
            *item = 1_000.0;
        }
        let mut spread = vec![B; 100];
        for k in 0..10 {
            spread[k * 10 + 5] = 1_000.0;
        }
        let params = IsrParams {
            budget_ms: B,
            expected_ticks: Some(100),
        };
        assert!(instability_ratio(&spread, params) > instability_ratio(&clustered, params) * 3.0);
    }

    #[test]
    fn derived_expected_ticks_accounts_for_overload() {
        // When ticks run long, fewer fit into the trace duration; deriving Ne
        // from the total period captures that (Na ≤ Ne).
        let trace = vec![100.0; 100]; // every tick double the budget
        let value = isr(&trace);
        // Constant overload has zero jitter regardless of normalization.
        assert_eq!(value, 0.0);
        let spiky: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 50.0 } else { 150.0 })
            .collect();
        assert!(isr(&spiky) > 0.2);
    }

    #[test]
    fn result_is_always_in_unit_range() {
        let pathological = vec![50.0, 1e9, 50.0, 1e9, 50.0];
        let v = instability_ratio(
            &pathological,
            IsrParams {
                budget_ms: B,
                expected_ticks: Some(5),
            },
        );
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    #[should_panic(expected = "tick budget must be positive")]
    fn zero_budget_panics() {
        let _ = instability_ratio(
            &[1.0, 2.0],
            IsrParams {
                budget_ms: 0.0,
                expected_ticks: None,
            },
        );
    }

    #[test]
    #[should_panic(expected = "outlier scale")]
    fn analytical_rejects_sub_unit_scale() {
        let _ = analytical_isr(0.5, 10.0);
    }

    #[test]
    fn synthetic_trace_has_expected_outlier_count() {
        let trace = synthetic_outlier_trace(100, 10, 5.0, B);
        let outliers = trace.iter().filter(|&&t| t > B).count();
        assert_eq!(outliers, 10);
        assert_eq!(trace.len(), 100);
    }
}
