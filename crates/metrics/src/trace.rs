//! Tick traces: the per-tick time series an experiment records.

use serde::{Deserialize, Serialize};

use crate::distribution::TickDistribution;
use crate::isr::{instability_ratio, IsrParams};
use crate::stats::{BoxplotSummary, Percentiles};

/// One recorded game tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Tick sequence number within the iteration.
    pub index: u64,
    /// Virtual time at which the tick started, in milliseconds since the
    /// start of the iteration.
    pub start_ms: f64,
    /// How long the tick's computation took, in milliseconds.
    pub busy_ms: f64,
    /// The full tick period: `max(busy, budget)` plus any catch-up backlog.
    pub period_ms: f64,
    /// Breakdown of the busy time across workload operations.
    pub distribution: TickDistribution,
}

/// A complete trace of ticks for one iteration of one experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TickTrace {
    records: Vec<TickRecord>,
    budget_ms: f64,
}

impl TickTrace {
    /// Creates an empty trace with the given tick budget (50 ms for MLGs).
    #[must_use]
    pub fn new(budget_ms: f64) -> Self {
        TickTrace {
            records: Vec::new(),
            budget_ms,
        }
    }

    /// Appends a tick record.
    pub fn push(&mut self, record: TickRecord) {
        self.records.push(record);
    }

    /// The tick budget this trace was recorded against.
    #[must_use]
    pub fn budget_ms(&self) -> f64 {
        self.budget_ms
    }

    /// Number of ticks recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no ticks were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the recorded ticks in order.
    pub fn iter(&self) -> impl Iterator<Item = &TickRecord> {
        self.records.iter()
    }

    /// The busy durations of all ticks, in milliseconds.
    #[must_use]
    pub fn busy_durations(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.busy_ms).collect()
    }

    /// The Instability Ratio of this trace (Equation 1 of the paper).
    ///
    /// `expected_ticks` is the number of ticks the iteration should have
    /// contained at the intended rate (duration / 50 ms); when `None` it is
    /// derived from the trace itself.
    #[must_use]
    pub fn instability_ratio(&self, expected_ticks: Option<u64>) -> f64 {
        instability_ratio(
            &self.busy_durations(),
            IsrParams {
                budget_ms: self.budget_ms,
                expected_ticks,
            },
        )
    }

    /// Percentile summary of the busy durations.
    #[must_use]
    pub fn percentiles(&self) -> Percentiles {
        Percentiles::of(&self.busy_durations())
    }

    /// Boxplot summary of the busy durations.
    #[must_use]
    pub fn boxplot(&self) -> BoxplotSummary {
        BoxplotSummary::of(&self.busy_durations())
    }

    /// Number of ticks whose busy time exceeded the budget (overloaded ticks).
    #[must_use]
    pub fn overloaded_ticks(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.busy_ms > self.budget_ms)
            .count()
    }

    /// Fraction of ticks that were overloaded (0–1).
    #[must_use]
    pub fn overloaded_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.overloaded_ticks() as f64 / self.records.len() as f64
    }

    /// The aggregate tick-time distribution over the whole trace, i.e. the
    /// share of total busy time attributed to each workload operation
    /// (Figure 11 of the paper).
    #[must_use]
    pub fn aggregate_distribution(&self) -> TickDistribution {
        let mut total = TickDistribution::default();
        for r in &self.records {
            total.merge(&r.distribution);
        }
        total
    }

    /// The downsampled time series `(start_ms, busy_ms)` used by the
    /// tick-time-over-time plots (Figure 9). At most `max_points` evenly
    /// spaced points are returned.
    #[must_use]
    pub fn time_series(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.records.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let step = (self.records.len() / max_points.max(1)).max(1);
        self.records
            .iter()
            .step_by(step)
            .map(|r| (r.start_ms, r.busy_ms))
            .collect()
    }
}

impl Extend<TickRecord> for TickTrace {
    fn extend<T: IntoIterator<Item = TickRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64, busy: f64) -> TickRecord {
        TickRecord {
            index,
            start_ms: index as f64 * 50.0,
            busy_ms: busy,
            period_ms: busy.max(50.0),
            distribution: TickDistribution::default(),
        }
    }

    fn trace_of(busy: &[f64]) -> TickTrace {
        let mut t = TickTrace::new(50.0);
        for (i, &b) in busy.iter().enumerate() {
            t.push(record(i as u64, b));
        }
        t
    }

    #[test]
    fn empty_trace_properties() {
        let t = TickTrace::new(50.0);
        assert!(t.is_empty());
        assert_eq!(t.overloaded_fraction(), 0.0);
        assert_eq!(t.instability_ratio(None), 0.0);
        assert!(t.time_series(100).is_empty());
    }

    #[test]
    fn overload_counting() {
        let t = trace_of(&[10.0, 20.0, 60.0, 70.0, 30.0]);
        assert_eq!(t.overloaded_ticks(), 2);
        assert!((t.overloaded_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stable_trace_has_zero_isr_and_unstable_does_not() {
        let stable = trace_of(&vec![10.0; 200]);
        assert_eq!(stable.instability_ratio(Some(200)), 0.0);
        let unstable = trace_of(
            &(0..200)
                .map(|i| if i % 2 == 0 { 10.0 } else { 500.0 })
                .collect::<Vec<_>>(),
        );
        assert!(unstable.instability_ratio(Some(200)) > 0.5);
    }

    #[test]
    fn percentiles_reflect_busy_times() {
        let t = trace_of(&[10.0, 20.0, 30.0, 40.0, 1000.0]);
        let p = t.percentiles();
        assert_eq!(p.max, 1000.0);
        assert_eq!(p.min, 10.0);
        assert!(p.mean > p.p50);
    }

    #[test]
    fn time_series_is_downsampled() {
        let t = trace_of(&vec![10.0; 1200]);
        let series = t.time_series(100);
        assert!(series.len() <= 120);
        assert!(series.len() >= 100);
        assert_eq!(series[0], (0.0, 10.0));
    }

    #[test]
    fn extend_appends_records() {
        let mut t = TickTrace::new(50.0);
        t.extend((0..10).map(|i| record(i, 25.0)));
        assert_eq!(t.len(), 10);
    }
}
