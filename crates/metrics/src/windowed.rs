//! Windowed streaming aggregation for long-horizon campaigns.
//!
//! A stationary iteration keeps its full tick trace in memory; a
//! long-horizon iteration (hours → days of simulated wall-clock) cannot.
//! [`WindowedAggregator`] folds the tick stream incrementally, mirroring the
//! benchmark daemon's `MetricsHistory` idiom so memory stays flat with
//! horizon:
//!
//! * the **open window** buffers at most `window_ticks` samples; when it
//!   fills, it is summarized into a [`WindowSummary`] (mean, CoV,
//!   percentiles, overload count — computed with the batch [`stats`]
//!   functions, so a window summary equals the batch statistics of the same
//!   slice exactly);
//! * closed summaries live in a **bounded ring** of `max_windows` entries
//!   (oldest evicted first);
//! * horizon-wide aggregates (mean, CoV, ISR) fold into **O(1) cumulative
//!   counters** — the ISR jitter sum accumulates in tick order, so the
//!   horizon ISR matches [`isr::instability_ratio`] over the full series
//!   bit-for-bit without retaining it.
//!
//! [`stats`]: crate::stats
//! [`isr::instability_ratio`]: crate::isr::instability_ratio

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::stats;

/// Summary statistics of one closed window of consecutive ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Zero-based index of this window within the iteration.
    pub index: u64,
    /// Tick index of the window's first sample.
    pub start_tick: u64,
    /// Number of tick samples in the window (equal to the configured window
    /// length except for a trailing partial window).
    pub ticks: usize,
    /// Mean tick busy time, in milliseconds.
    pub mean_ms: f64,
    /// Coefficient of variation of the window's busy times.
    pub cov: f64,
    /// Median busy time, in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile busy time, in milliseconds.
    pub p95_ms: f64,
    /// Maximum busy time, in milliseconds.
    pub max_ms: f64,
    /// Number of ticks that exceeded the budget.
    pub overloaded: usize,
}

/// Final report of a windowed iteration: the bounded tail of window
/// summaries plus the horizon-wide cumulative aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedReport {
    /// Configured window length, in ticks.
    pub window_ticks: usize,
    /// Configured bound on retained window summaries.
    pub max_windows: usize,
    /// The most recent window summaries (at most `max_windows`).
    pub windows: Vec<WindowSummary>,
    /// Total number of windows closed over the horizon (may exceed
    /// `windows.len()` — the difference is what eviction dropped).
    pub windows_closed: u64,
    /// Total ticks folded into the aggregator.
    pub total_ticks: u64,
    /// Total over-budget ticks over the horizon.
    pub total_overloaded: u64,
    /// Horizon-wide mean busy time, in milliseconds.
    pub mean_ms: f64,
    /// Horizon-wide coefficient of variation (population, from cumulative
    /// moments).
    pub cov: f64,
    /// Horizon-wide Instability Ratio, identical to the batch computation
    /// over the full (unretained) tick series.
    pub instability_ratio: f64,
}

/// Streaming aggregator: see the [module docs](self).
#[derive(Debug, Clone)]
pub struct WindowedAggregator {
    window_ticks: usize,
    max_windows: usize,
    budget_ms: f64,
    current: Vec<f64>,
    current_overloaded: usize,
    windows: VecDeque<WindowSummary>,
    windows_closed: u64,
    total_ticks: u64,
    total_overloaded: u64,
    sum: f64,
    sum_sq: f64,
    // ISR folding state: Σ|max(b,tᵢ)−max(b,tᵢ₋₁)| and Σ max(b,tᵢ) in tick
    // order, plus the previous clamped period.
    jitter_sum: f64,
    period_sum: f64,
    last_period: Option<f64>,
}

impl WindowedAggregator {
    /// Creates an aggregator with `window_ticks`-tick windows, retaining at
    /// most `max_windows` summaries. `budget_ms` is the tick budget used for
    /// overload counting and ISR clamping.
    ///
    /// # Panics
    ///
    /// Panics if `window_ticks` or `max_windows` is zero, or if `budget_ms`
    /// is not strictly positive.
    #[must_use]
    pub fn new(window_ticks: usize, max_windows: usize, budget_ms: f64) -> Self {
        assert!(window_ticks > 0, "window length must be positive");
        assert!(max_windows > 0, "window ring bound must be positive");
        assert!(budget_ms > 0.0, "tick budget must be positive");
        WindowedAggregator {
            window_ticks,
            max_windows,
            budget_ms,
            current: Vec::with_capacity(window_ticks),
            current_overloaded: 0,
            windows: VecDeque::with_capacity(max_windows),
            windows_closed: 0,
            total_ticks: 0,
            total_overloaded: 0,
            sum: 0.0,
            sum_sq: 0.0,
            jitter_sum: 0.0,
            period_sum: 0.0,
            last_period: None,
        }
    }

    /// Folds one tick's busy time into the aggregator, closing the open
    /// window if it fills.
    pub fn push(&mut self, busy_ms: f64) {
        self.total_ticks += 1;
        if busy_ms > self.budget_ms {
            self.total_overloaded += 1;
            self.current_overloaded += 1;
        }
        self.sum += busy_ms;
        self.sum_sq += busy_ms * busy_ms;
        let period = busy_ms.max(self.budget_ms);
        if let Some(last) = self.last_period {
            self.jitter_sum += (period - last).abs();
        }
        self.period_sum += period;
        self.last_period = Some(period);
        self.current.push(busy_ms);
        if self.current.len() == self.window_ticks {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let ticks = self.current.len();
        let summary = WindowSummary {
            index: self.windows_closed,
            start_tick: self.total_ticks - ticks as u64,
            ticks,
            mean_ms: stats::mean(&self.current),
            cov: stats::coefficient_of_variation(&self.current),
            p50_ms: stats::percentile(&self.current, 50.0),
            p95_ms: stats::percentile(&self.current, 95.0),
            max_ms: self
                .current
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
            overloaded: self.current_overloaded,
        };
        if self.windows.len() == self.max_windows {
            self.windows.pop_front();
        }
        self.windows.push_back(summary);
        self.windows_closed += 1;
        self.current.clear();
        self.current_overloaded = 0;
    }

    /// The retained window summaries, oldest first.
    #[must_use]
    pub fn windows(&self) -> &VecDeque<WindowSummary> {
        &self.windows
    }

    /// Total ticks folded so far.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Total over-budget ticks folded so far.
    #[must_use]
    pub fn total_overloaded(&self) -> u64 {
        self.total_overloaded
    }

    /// Number of windows closed so far (retained or evicted).
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Horizon-wide mean busy time from the cumulative sum.
    #[must_use]
    pub fn cumulative_mean(&self) -> f64 {
        if self.total_ticks == 0 {
            return 0.0;
        }
        self.sum / self.total_ticks as f64
    }

    /// Horizon-wide population coefficient of variation from the cumulative
    /// moments.
    #[must_use]
    pub fn cumulative_cov(&self) -> f64 {
        let mean = self.cumulative_mean();
        if mean == 0.0 || self.total_ticks == 0 {
            return 0.0;
        }
        let variance = (self.sum_sq / self.total_ticks as f64 - mean * mean).max(0.0);
        variance.sqrt() / mean
    }

    /// Horizon-wide Instability Ratio, identical to
    /// [`isr::instability_ratio`](crate::isr::instability_ratio) over the
    /// full tick series (the jitter sum folds in the same order the batch
    /// function sums it). `expected_ticks` pins `Ne` as in
    /// [`IsrParams`](crate::isr::IsrParams); `None` derives it from the
    /// accumulated period sum.
    #[must_use]
    pub fn instability_ratio(&self, expected_ticks: Option<u64>) -> f64 {
        if self.total_ticks < 2 {
            return 0.0;
        }
        let expected =
            expected_ticks.unwrap_or_else(|| (self.period_sum / self.budget_ms).ceil() as u64);
        if expected == 0 {
            return 0.0;
        }
        (self.jitter_sum / (expected as f64 * 2.0 * self.budget_ms)).clamp(0.0, 1.0)
    }

    /// Closes the trailing partial window (if any) and produces the final
    /// report. The iteration's planned tick count pins the ISR
    /// normalization, exactly like the batch path.
    #[must_use]
    pub fn finish(mut self, expected_ticks: Option<u64>) -> WindowedReport {
        let isr = self.instability_ratio(expected_ticks);
        self.close_window();
        WindowedReport {
            window_ticks: self.window_ticks,
            max_windows: self.max_windows,
            windows: self.windows.into_iter().collect(),
            windows_closed: self.windows_closed,
            total_ticks: self.total_ticks,
            total_overloaded: self.total_overloaded,
            mean_ms: if self.total_ticks == 0 {
                0.0
            } else {
                self.sum / self.total_ticks as f64
            },
            cov: {
                let mean = if self.total_ticks == 0 {
                    0.0
                } else {
                    self.sum / self.total_ticks as f64
                };
                if mean == 0.0 {
                    0.0
                } else {
                    ((self.sum_sq / self.total_ticks as f64 - mean * mean).max(0.0)).sqrt() / mean
                }
            },
            instability_ratio: isr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isr::{instability_ratio, IsrParams};

    const B: f64 = 50.0;

    fn series(n: usize) -> Vec<f64> {
        // A deterministic, irregular series crossing the budget both ways.
        (0..n)
            .map(|i| 20.0 + 45.0 * ((i * 7 + 3) % 11) as f64 / 10.0 + (i % 3) as f64 * 8.0)
            .collect()
    }

    #[test]
    fn window_summaries_match_batch_stats_exactly() {
        let data = series(1000);
        let mut agg = WindowedAggregator::new(250, 16, B);
        for &v in &data {
            agg.push(v);
        }
        assert_eq!(agg.windows_closed(), 4);
        for (w, chunk) in agg.windows().iter().zip(data.chunks(250)) {
            assert_eq!(w.ticks, 250);
            assert_eq!(w.mean_ms, stats::mean(chunk));
            assert_eq!(w.cov, stats::coefficient_of_variation(chunk));
            assert_eq!(w.p50_ms, stats::percentile(chunk, 50.0));
            assert_eq!(w.p95_ms, stats::percentile(chunk, 95.0));
            assert_eq!(w.overloaded, chunk.iter().filter(|&&v| v > B).count());
        }
    }

    #[test]
    fn streamed_isr_matches_batch_isr_bit_for_bit() {
        let data = series(5_000);
        let mut agg = WindowedAggregator::new(100, 8, B);
        for &v in &data {
            agg.push(v);
        }
        for expected in [None, Some(5_000), Some(6_000)] {
            let batch = instability_ratio(
                &data,
                IsrParams {
                    budget_ms: B,
                    expected_ticks: expected,
                },
            );
            assert_eq!(agg.instability_ratio(expected).to_bits(), batch.to_bits());
        }
    }

    #[test]
    fn hand_computed_two_window_fixture() {
        // Windows of 3: [50, 60, 70] and [80, 40, 60], trailing [90].
        let mut agg = WindowedAggregator::new(3, 8, B);
        for v in [50.0, 60.0, 70.0, 80.0, 40.0, 60.0, 90.0] {
            agg.push(v);
        }
        assert_eq!(agg.windows_closed(), 2);
        let w0 = &agg.windows()[0];
        assert_eq!(w0.mean_ms, 60.0);
        assert_eq!(w0.p50_ms, 60.0);
        assert_eq!(w0.max_ms, 70.0);
        assert_eq!(w0.overloaded, 2); // 60 and 70 exceed the 50 ms budget
        let w1 = &agg.windows()[1];
        assert_eq!(w1.mean_ms, 60.0);
        assert_eq!(w1.start_tick, 3);
        // CoV of [80, 40, 60]: σ = √(800/3), mean 60.
        assert!((w1.cov - (800.0f64 / 3.0).sqrt() / 60.0).abs() < 1e-12);
        // finish() closes the trailing partial window.
        let report = agg.finish(Some(7));
        assert_eq!(report.windows_closed, 3);
        assert_eq!(report.windows[2].ticks, 1);
        assert_eq!(report.windows[2].mean_ms, 90.0);
        assert_eq!(report.total_ticks, 7);
        assert_eq!(report.total_overloaded, 5);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_most_recent_windows() {
        let mut agg = WindowedAggregator::new(10, 4, B);
        for i in 0..200 {
            agg.push(f64::from(i));
        }
        assert_eq!(agg.windows_closed(), 20);
        assert_eq!(agg.windows().len(), 4, "ring must stay bounded");
        let indices: Vec<u64> = agg.windows().iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![16, 17, 18, 19]);
        assert_eq!(agg.total_ticks(), 200);
    }

    #[test]
    fn edge_cases_empty_single_and_window_equals_horizon() {
        // Empty: nothing pushed, nothing reported.
        let empty = WindowedAggregator::new(5, 2, B).finish(None);
        assert_eq!(empty.total_ticks, 0);
        assert_eq!(empty.windows_closed, 0);
        assert_eq!(empty.mean_ms, 0.0);
        assert_eq!(empty.cov, 0.0);
        assert_eq!(empty.instability_ratio, 0.0);

        // Single sample: a lone partial window, zero ISR (no pair).
        let mut single = WindowedAggregator::new(5, 2, B);
        single.push(75.0);
        assert_eq!(single.instability_ratio(None), 0.0);
        let report = single.finish(None);
        assert_eq!(report.windows_closed, 1);
        assert_eq!(report.windows[0].ticks, 1);
        assert_eq!(report.windows[0].mean_ms, 75.0);
        assert_eq!(report.windows[0].cov, 0.0);

        // Window == horizon: exactly one full window, equal to batch stats.
        let data = series(64);
        let mut whole = WindowedAggregator::new(64, 2, B);
        for &v in &data {
            whole.push(v);
        }
        assert_eq!(whole.windows_closed(), 1);
        let w = &whole.windows()[0];
        assert_eq!(w.mean_ms, stats::mean(&data));
        assert_eq!(w.cov, stats::coefficient_of_variation(&data));
        assert_eq!(w.p95_ms, stats::percentile(&data, 95.0));
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_length_panics() {
        let _ = WindowedAggregator::new(0, 1, B);
    }
}
