//! Game response time and playability thresholds.
//!
//! "Response time is how system latency becomes visible to the user. Lower
//! values are better, and we use existing latency thresholds for the game
//! becoming noticeable and unplayable at 60 ms and 116 ms respectively."
//! (Section 3.5.1; the figures draw the unplayable line at 118 ms.)

use serde::{Deserialize, Serialize};

use crate::stats::{BoxplotSummary, Percentiles};

/// Latency at which added delay becomes noticeable to players, in ms.
pub const NOTICEABLE_DELAY_MS: f64 = 60.0;

/// Latency at which the game becomes unplayable, in ms.
pub const UNPLAYABLE_MS: f64 = 118.0;

/// A single response-time measurement from the chat-echo probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseSample {
    /// Virtual time at which the probing action was sent, ms.
    pub sent_at_ms: f64,
    /// Round-trip time until the echo was observed, ms.
    pub round_trip_ms: f64,
}

/// Summary of the response-time measurements of one experiment, reporting the
/// quantities Figure 7 and MF1 use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeSummary {
    /// Number of samples.
    pub samples: usize,
    /// Percentile summary of the round-trip times.
    pub percentiles: Percentiles,
    /// Boxplot summary (5th/95th whiskers are taken from percentiles).
    pub boxplot: BoxplotSummary,
    /// Fraction of samples above the noticeable-delay threshold (0–1).
    pub noticeable_fraction: f64,
    /// Fraction of samples above the unplayable threshold (0–1).
    pub unplayable_fraction: f64,
    /// Ratio of the maximum to the arithmetic mean (MF1 reports up to 20.7×).
    pub max_over_mean: f64,
    /// Ratio of the maximum to the unplayable threshold (MF1 reports 7.4×).
    pub max_over_unplayable: f64,
}

impl ResponseTimeSummary {
    /// Computes the summary of a set of round-trip times (milliseconds).
    /// Returns an all-zero summary when the sample set is empty.
    #[must_use]
    pub fn of(round_trips_ms: &[f64]) -> Self {
        let percentiles = Percentiles::of(round_trips_ms);
        let boxplot = BoxplotSummary::of(round_trips_ms);
        let n = round_trips_ms.len();
        let frac = |threshold: f64| {
            if n == 0 {
                0.0
            } else {
                round_trips_ms.iter().filter(|&&v| v > threshold).count() as f64 / n as f64
            }
        };
        ResponseTimeSummary {
            samples: n,
            percentiles,
            boxplot,
            noticeable_fraction: frac(NOTICEABLE_DELAY_MS),
            unplayable_fraction: frac(UNPLAYABLE_MS),
            max_over_mean: if percentiles.mean > 0.0 {
                percentiles.max / percentiles.mean
            } else {
                0.0
            },
            max_over_unplayable: percentiles.max / UNPLAYABLE_MS,
        }
    }

    /// Classifies the median experience: `"good"`, `"noticeable"` or
    /// `"unplayable"`.
    #[must_use]
    pub fn median_classification(&self) -> &'static str {
        classify(self.percentiles.p50)
    }
}

/// Classifies a single response time against the playability thresholds.
#[must_use]
pub fn classify(response_ms: f64) -> &'static str {
    if response_ms > UNPLAYABLE_MS {
        "unplayable"
    } else if response_ms > NOTICEABLE_DELAY_MS {
        "noticeable"
    } else {
        "good"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify(30.0), "good");
        assert_eq!(classify(60.0), "good");
        assert_eq!(classify(61.0), "noticeable");
        assert_eq!(classify(118.0), "noticeable");
        assert_eq!(classify(119.0), "unplayable");
    }

    #[test]
    fn empty_sample_summary_is_zero() {
        let s = ResponseTimeSummary::of(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.max_over_mean, 0.0);
        assert_eq!(s.noticeable_fraction, 0.0);
    }

    #[test]
    fn fractions_count_threshold_crossings() {
        let samples = vec![30.0, 40.0, 70.0, 80.0, 130.0];
        let s = ResponseTimeSummary::of(&samples);
        assert!((s.noticeable_fraction - 0.6).abs() < 1e-12);
        assert!((s.unplayable_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mf1_style_ratios() {
        // A mostly-good trace with a huge connection spike, like Figure 7's
        // Control workload: mean stays low, max is enormous.
        let mut samples = vec![25.0; 99];
        samples.push(600.0);
        let s = ResponseTimeSummary::of(&samples);
        assert!(s.max_over_mean > 15.0, "max/mean = {}", s.max_over_mean);
        assert!(s.max_over_unplayable > 5.0);
        assert_eq!(s.median_classification(), "good");
    }

    #[test]
    fn median_classification_tracks_the_median() {
        let noticeable = ResponseTimeSummary::of(&[70.0, 75.0, 80.0]);
        assert_eq!(noticeable.median_classification(), "noticeable");
        let unplayable = ResponseTimeSummary::of(&[500.0, 600.0, 700.0]);
        assert_eq!(unplayable.median_classification(), "unplayable");
    }

    #[test]
    fn percentiles_and_boxplot_are_consistent() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = ResponseTimeSummary::of(&samples);
        assert_eq!(s.percentiles.max, 100.0);
        assert_eq!(s.boxplot.max, 100.0);
        assert!((s.percentiles.p50 - s.boxplot.median).abs() < 1e-12);
    }
}
