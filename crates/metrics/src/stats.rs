//! Summary statistics: percentiles, boxplot summaries, IQR.
//!
//! The paper reports its results as means, medians, 5th/95th percentiles,
//! maxima, and box-and-whisker summaries with whiskers at ±1.5 × IQR bounded
//! by the observed minimum and maximum (Figures 7, 10, 12). These helpers
//! compute exactly those summaries.

use serde::{Deserialize, Serialize};

/// Common percentiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Minimum observed value.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile (first quartile).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (third quartile).
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes the arithmetic mean of a sample; 0 for an empty sample.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Computes the population standard deviation of a sample; 0 for fewer than
/// two values.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Computes the coefficient of variation (CoV = population standard
/// deviation / mean) of a sample; 0 when the sample is empty or its mean is
/// zero.
///
/// The paper uses CoV as the scale-free measure of tick-time variability
/// when comparing environments whose mean tick times differ (the quantity
/// the ISR metric is then argued to improve on).
#[must_use]
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(values) / m
}

/// Computes percentile `p` (0–100) of a sample using linear interpolation
/// between closest ranks. Returns 0 for an empty sample.
///
/// # Panics
///
/// Panics if `p` is outside `0..=100`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let fraction = rank - lower as f64;
    sorted[lower] + (sorted[upper] - sorted[lower]) * fraction
}

impl Percentiles {
    /// Computes the percentile summary of a sample. Returns an all-zero
    /// summary for an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Percentiles {
                min: 0.0,
                p5: 0.0,
                p25: 0.0,
                p50: 0.0,
                p75: 0.0,
                p95: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        Percentiles {
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            p5: percentile(values, 5.0),
            p25: percentile(values, 25.0),
            p50: percentile(values, 50.0),
            p75: percentile(values, 75.0),
            p95: percentile(values, 95.0),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(values),
        }
    }

    /// The interquartile range (p75 − p25).
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

/// A box-and-whisker summary with whiskers at ±1.5 × IQR bounded by the
/// observed extremes, as drawn in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Lower whisker end.
    pub whisker_low: f64,
    /// First quartile (box bottom/left edge).
    pub q1: f64,
    /// Median (line inside the box).
    pub median: f64,
    /// Third quartile (box top/right edge).
    pub q3: f64,
    /// Upper whisker end.
    pub whisker_high: f64,
    /// Arithmetic mean (the black diamond in the paper's plots).
    pub mean: f64,
    /// Maximum observed value (the paper annotates extreme maxima with
    /// arrows, e.g. "2718 ms" in Figure 7).
    pub max: f64,
    /// Minimum observed value.
    pub min: f64,
}

impl BoxplotSummary {
    /// Computes the boxplot summary of a sample. Returns an all-zero summary
    /// for an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let p = Percentiles::of(values);
        let iqr = p.iqr();
        let whisker_low = (p.p25 - 1.5 * iqr).max(p.min);
        let whisker_high = (p.p75 + 1.5 * iqr).min(p.max);
        BoxplotSummary {
            whisker_low,
            q1: p.p25,
            median: p.p50,
            q3: p.p75,
            whisker_high,
            mean: p.mean,
            max: p.max,
            min: p.min,
        }
    }

    /// The interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_of_variation_matches_hand_computed_fixtures() {
        // Fixture: mean 5, population std dev 2 ⇒ CoV = 0.4 exactly.
        let sample = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((coefficient_of_variation(&sample) - 0.4).abs() < 1e-12);
        // A constant trace has no variation.
        assert_eq!(coefficient_of_variation(&[50.0; 20]), 0.0);
        // Scale invariance: CoV(k·x) = CoV(x).
        let scaled: Vec<f64> = sample.iter().map(|v| v * 17.5).collect();
        assert!(
            (coefficient_of_variation(&scaled) - coefficient_of_variation(&sample)).abs() < 1e-12
        );
        // Degenerate inputs.
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_std_dev_and_percentiles_match_the_paper_style_fixture() {
        // A 20-tick trace shaped like a stable server with one outlier
        // (values in ms). Every statistic below is hand-computed.
        let mut trace = vec![50.0; 19];
        trace.push(250.0);
        assert!((mean(&trace) - 60.0).abs() < 1e-12, "mean = (19·50+250)/20");
        // Variance = (19·(50−60)² + (250−60)²)/20 = (1900 + 36100)/20 = 1900.
        assert!((std_dev(&trace) - 1900.0_f64.sqrt()).abs() < 1e-12);
        assert!((coefficient_of_variation(&trace) - 1900.0_f64.sqrt() / 60.0).abs() < 1e-12);
        // Sorted trace: 19×50 then 250. Linear-interpolation ranks over
        // n−1 = 19 intervals: p95 sits at rank 18.05 ⇒ 50 + 0.05·200 = 60.
        assert_eq!(percentile(&trace, 50.0), 50.0);
        assert!((percentile(&trace, 95.0) - 60.0).abs() < 1e-9);
        assert_eq!(percentile(&trace, 100.0), 250.0);
        let p = Percentiles::of(&trace);
        assert_eq!((p.min, p.p50, p.max), (50.0, 50.0, 250.0));
        assert!((p.mean - 60.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_fixture_with_exact_interpolation_points() {
        // Hand-computed interpolation fixture: values 10, 20, 30, 40 (n=4,
        // 3 rank intervals). p(33.3…%) lands exactly on rank 1 ⇒ 20;
        // p50 = rank 1.5 ⇒ 25; p75 = rank 2.25 ⇒ 32.5; p90 = rank 2.7 ⇒ 37.
        let values = [40.0, 10.0, 30.0, 20.0];
        assert!((percentile(&values, 100.0 / 3.0) - 20.0).abs() < 1e-9);
        assert!((percentile(&values, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&values, 75.0) - 32.5).abs() < 1e-12);
        assert!((percentile(&values, 90.0) - 37.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 100.0), 5.0);
        assert_eq!(percentile(&values, 50.0), 3.0);
        assert_eq!(percentile(&values, 25.0), 2.0);
        assert_eq!(percentile(&values, 10.0), 1.4);
    }

    #[test]
    fn percentile_is_order_independent() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let shuffled = vec![4.0, 1.0, 5.0, 3.0, 2.0];
        for p in [5.0, 25.0, 50.0, 75.0, 95.0] {
            assert_eq!(percentile(&sorted, p), percentile(&shuffled, p));
        }
    }

    #[test]
    #[should_panic(expected = "percentile must be in 0..=100")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }

    #[test]
    fn empty_sample_gives_zero_summaries() {
        let p = Percentiles::of(&[]);
        assert_eq!(p.mean, 0.0);
        assert_eq!(p.max, 0.0);
        let b = BoxplotSummary::of(&[]);
        assert_eq!(b.median, 0.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 37.0) % 500.0).collect();
        let p = Percentiles::of(&values);
        assert!(p.min <= p.p5);
        assert!(p.p5 <= p.p25);
        assert!(p.p25 <= p.p50);
        assert!(p.p50 <= p.p75);
        assert!(p.p75 <= p.p95);
        assert!(p.p95 <= p.max);
    }

    #[test]
    fn boxplot_whiskers_are_bounded_by_observations() {
        let mut values = vec![50.0; 100];
        values.push(5_000.0); // one extreme outlier
        let b = BoxplotSummary::of(&values);
        assert!(b.whisker_high <= b.max);
        assert!(b.whisker_low >= b.min);
        assert_eq!(b.max, 5_000.0);
        // The outlier inflates the mean above the median.
        assert!(b.mean > b.median);
    }

    #[test]
    fn iqr_matches_quartiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&values);
        assert!((p.iqr() - 49.5).abs() < 1.0);
        let b = BoxplotSummary::of(&values);
        assert!((b.iqr() - p.iqr()).abs() < 1e-12);
    }

    #[test]
    fn single_value_sample() {
        let p = Percentiles::of(&[42.0]);
        assert_eq!(p.min, 42.0);
        assert_eq!(p.max, 42.0);
        assert_eq!(p.p50, 42.0);
        assert_eq!(p.mean, 42.0);
    }
}
