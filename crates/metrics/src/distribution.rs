//! Tick-time distribution across workload operations.
//!
//! Figure 11 of the paper breaks each game's tick time into the operations
//! *Block Add/Remove*, *Block Update*, *Entities*, *Wait before*, *Wait
//! after* and *Other*, showing that entity processing dominates the non-idle
//! share (MF4).

use serde::{Deserialize, Serialize};

/// The operations tick time is attributed to, matching Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TickOperation {
    /// Creating or destroying terrain blocks.
    BlockAddRemove,
    /// Processing terrain-simulation rule updates (block updates).
    BlockUpdate,
    /// Entity simulation (movement, AI, collisions, spawning).
    Entities,
    /// Handling player actions and networking.
    Players,
    /// Idle time waiting before the tick's work (input queue poll).
    WaitBefore,
    /// Idle time waiting after the tick's work for the next scheduled tick.
    WaitAfter,
    /// Everything else (lighting, bookkeeping, metrics externalization).
    Other,
}

impl TickOperation {
    /// All operations in display order.
    #[must_use]
    pub fn all() -> [TickOperation; 7] {
        [
            TickOperation::BlockAddRemove,
            TickOperation::BlockUpdate,
            TickOperation::Entities,
            TickOperation::Players,
            TickOperation::WaitBefore,
            TickOperation::WaitAfter,
            TickOperation::Other,
        ]
    }

    /// Returns `true` for the idle (waiting) operations.
    #[must_use]
    pub fn is_wait(self) -> bool {
        matches!(self, TickOperation::WaitBefore | TickOperation::WaitAfter)
    }
}

impl std::fmt::Display for TickOperation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TickOperation::BlockAddRemove => "block add/remove",
            TickOperation::BlockUpdate => "block update",
            TickOperation::Entities => "entities",
            TickOperation::Players => "players",
            TickOperation::WaitBefore => "wait before",
            TickOperation::WaitAfter => "wait after",
            TickOperation::Other => "other",
        };
        f.write_str(name)
    }
}

/// Milliseconds of tick time attributed to each operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TickDistribution {
    /// Time creating/destroying blocks.
    pub block_add_remove_ms: f64,
    /// Time processing block updates.
    pub block_update_ms: f64,
    /// Time simulating entities.
    pub entities_ms: f64,
    /// Time handling player actions and networking.
    pub players_ms: f64,
    /// Idle time before the work.
    pub wait_before_ms: f64,
    /// Idle time after the work.
    pub wait_after_ms: f64,
    /// Everything else.
    pub other_ms: f64,
}

impl TickDistribution {
    /// Returns the time attributed to one operation.
    #[must_use]
    pub fn get(&self, op: TickOperation) -> f64 {
        match op {
            TickOperation::BlockAddRemove => self.block_add_remove_ms,
            TickOperation::BlockUpdate => self.block_update_ms,
            TickOperation::Entities => self.entities_ms,
            TickOperation::Players => self.players_ms,
            TickOperation::WaitBefore => self.wait_before_ms,
            TickOperation::WaitAfter => self.wait_after_ms,
            TickOperation::Other => self.other_ms,
        }
    }

    /// Sets the time attributed to one operation.
    pub fn set(&mut self, op: TickOperation, ms: f64) {
        match op {
            TickOperation::BlockAddRemove => self.block_add_remove_ms = ms,
            TickOperation::BlockUpdate => self.block_update_ms = ms,
            TickOperation::Entities => self.entities_ms = ms,
            TickOperation::Players => self.players_ms = ms,
            TickOperation::WaitBefore => self.wait_before_ms = ms,
            TickOperation::WaitAfter => self.wait_after_ms = ms,
            TickOperation::Other => self.other_ms = ms,
        }
    }

    /// Total time across all operations, including waits.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        TickOperation::all().iter().map(|&op| self.get(op)).sum()
    }

    /// Total non-waiting (busy) time.
    #[must_use]
    pub fn busy_ms(&self) -> f64 {
        TickOperation::all()
            .iter()
            .filter(|op| !op.is_wait())
            .map(|&op| self.get(op))
            .sum()
    }

    /// The share (0–100) of total time attributed to `op`, as plotted in
    /// Figure 11. Returns 0 when the distribution is empty.
    #[must_use]
    pub fn share_percent(&self, op: TickOperation) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            return 0.0;
        }
        self.get(op) / total * 100.0
    }

    /// The share (0–100) of *non-waiting* time attributed to `op`.
    #[must_use]
    pub fn busy_share_percent(&self, op: TickOperation) -> f64 {
        let busy = self.busy_ms();
        if busy <= 0.0 || op.is_wait() {
            return 0.0;
        }
        self.get(op) / busy * 100.0
    }

    /// Adds another distribution into this one.
    pub fn merge(&mut self, other: &TickDistribution) {
        for op in TickOperation::all() {
            self.set(op, self.get(op) + other.get(op));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TickDistribution {
        TickDistribution {
            block_add_remove_ms: 2.0,
            block_update_ms: 4.0,
            entities_ms: 24.0,
            players_ms: 2.0,
            wait_before_ms: 1.0,
            wait_after_ms: 15.0,
            other_ms: 2.0,
        }
    }

    #[test]
    fn totals_and_busy_time() {
        let d = sample();
        assert!((d.total_ms() - 50.0).abs() < 1e-12);
        assert!((d.busy_ms() - 34.0).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one_hundred() {
        let d = sample();
        let total: f64 = TickOperation::all()
            .iter()
            .map(|&op| d.share_percent(op))
            .sum();
        assert!((total - 100.0).abs() < 1e-9);
        let busy: f64 = TickOperation::all()
            .iter()
            .map(|&op| d.busy_share_percent(op))
            .sum();
        assert!((busy - 100.0).abs() < 1e-9);
    }

    #[test]
    fn entities_dominate_the_busy_share_in_the_sample() {
        let d = sample();
        let entity_share = d.busy_share_percent(TickOperation::Entities);
        for op in TickOperation::all() {
            if op != TickOperation::Entities && !op.is_wait() {
                assert!(entity_share > d.busy_share_percent(op));
            }
        }
        assert!(entity_share > 50.0);
    }

    #[test]
    fn empty_distribution_has_zero_shares() {
        let d = TickDistribution::default();
        assert_eq!(d.share_percent(TickOperation::Entities), 0.0);
        assert_eq!(d.busy_share_percent(TickOperation::Entities), 0.0);
        assert_eq!(d.total_ms(), 0.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut d = TickDistribution::default();
        for (i, op) in TickOperation::all().into_iter().enumerate() {
            d.set(op, i as f64);
        }
        for (i, op) in TickOperation::all().into_iter().enumerate() {
            assert_eq!(d.get(op), i as f64);
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        a.merge(&sample());
        assert!((a.total_ms() - 100.0).abs() < 1e-12);
        assert!((a.entities_ms - 48.0).abs() < 1e-12);
    }

    #[test]
    fn wait_operations_are_classified() {
        assert!(TickOperation::WaitBefore.is_wait());
        assert!(TickOperation::WaitAfter.is_wait());
        assert!(!TickOperation::Entities.is_wait());
        assert_eq!(TickOperation::all().len(), 7);
    }
}
