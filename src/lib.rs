//! Umbrella crate for workspace-level examples and integration tests of the
//! Meterstick reproduction. Re-exports nothing; the examples and integration
//! tests under `examples/` and `tests/` depend on the member crates directly.
//!
//! # Where to start
//!
//! For the system-wide map — the campaign layer, the tick stage graph and
//! its determinism contract, the quadtree rebalancer, the stage-Amdahl
//! cost model and the persistent tick worker pool, with measured
//! scoped-vs-pool substrate numbers — read the architecture book at
//! `docs/ARCHITECTURE.md` in the repository root, then drill into the
//! per-crate rustdoc it links.
//!
//! The benchmark is driven through the **`Campaign` API** in the
//! `meterstick` crate (`crates/core`): a campaign declares a full factorial
//! sweep — workloads × server flavors × environments (including AWS node
//! sizes) × iterations — expands it into independent, seeded iteration
//! jobs, runs them on a pluggable executor (sequential, or thread-based
//! parallel with bit-identical results), and streams each result into
//! attached `ResultSink`s as it completes:
//!
//! ```text
//! Campaign::new()
//!     .workloads([WorkloadKind::Control, WorkloadKind::Farm])
//!     .flavors(ServerFlavor::all())
//!     .environments([Environment::aws_default(), Environment::das5(2)])
//!     .iterations(5)
//!     .run()?;                       // -> Result<CampaignResults, BenchmarkError>
//! ```
//!
//! * `examples/quickstart.rs` — a small campaign end to end;
//! * `examples/cloud_comparison.rs`, `examples/node_sizing.rs` — sweeps
//!   over environments and node sizes;
//! * `examples/farm_stress.rs` — the lower-level substrate API without the
//!   campaign layer;
//! * `crates/bench/src/bin/` — one binary per figure/table of the paper,
//!   all built on campaigns (`--sequential`, `--progress`, `--csv PATH`
//!   flags select executor and streaming sinks);
//! * `tests/end_to_end.rs` — the paper's main findings (MF1–MF5) checked
//!   against the simulation.
//!
//! The game server itself runs a **stage-parallel tick graph** over a
//! sharded tick pipeline: loaded chunks are partitioned into spatial
//! shards, and every stage of the tick — player handler, terrain,
//! entities, dissemination — declares shard-parallel work (batched by
//! owning shard, fanned over the server's **persistent tick worker
//! pool** — `mlg_world::pool` — whose parked workers outlive the tick, so
//! no phase pays thread spawn/join) plus a serial
//! escalation tail (boundary chunks, cross-shard player actions), with
//! results merged in canonical shard order, so output is bit-identical at
//! any `tick_threads` setting (campaigns can sweep that axis). Lighting
//! is either eager (vanilla, relit inside the terrain stage) or
//! **cross-tick pipelined** (Paper/Folia): a tick's relight set queues up
//! and is consumed over a frozen snapshot while the next tick's player
//! stage runs — swept through the campaign `eager_lighting` axis. Two
//! partitions exist: static 4-chunk x-stripes, and an **adaptive 2D
//! region quadtree** that splits hot regions and merges cold ones between
//! ticks based on the previous tick's merged load report — terrain,
//! entity AND player-stage loads — (split above 2× the mean shard load,
//! merge below ½× — a hysteresis band that prevents oscillation;
//! decisions are a pure function of the report, so the partition evolves
//! identically at any thread count). The Folia-like `ServerFlavor::Folia`
//! turns the sharded architecture on *and* rebalances; the paper's
//! flavors stay serial, preserving MF2's Lag-workload crash. Campaigns
//! sweep the architecture through the `shard_rebalance` axis (seed-paired
//! with the static partition). The cost model folds one `StageWork`
//! record per stage — per-stage parallel fractions, widths and
//! busiest-shard floors — into an Amdahl critical path; that is how vCPU
//! count affects tick busy time, why rebalancing lets added cores absorb
//! clustered hotspots, and where the per-stage `stage_*_ms` CSV columns
//! come from. The player-heavy `WorkloadKind::Crowd` (220 clustered bots
//! walking and editing terrain; in `extended()`, not the paper's `all()`)
//! exists to load the player-handler and dissemination stages the way TNT
//! loads entities. (The legacy `ExperimentRunner` shim has been removed;
//! use `Campaign::from_config`.)
//!
//! The determinism contract the tick graph rests on — no hash-order
//! iteration on the tick path, no wall-clock reads in modeled time, no
//! ambient RNG, no `unsafe`, no bare thread spawns, no debug prints in
//! library crates — is **machine-checked** by the `detlint` crate
//! (`cargo run -p detlint -- --workspace`); the rules, their rationale
//! and the inline-waiver syntax are documented in `docs/ARCHITECTURE.md`
//! under "Machine-checked determinism contract".

#![forbid(unsafe_code)]
