//! Umbrella crate for workspace-level examples and integration tests of the
//! Meterstick reproduction. Re-exports nothing; the examples and integration
//! tests under `examples/` and `tests/` depend on the member crates directly.
